// The Prometheus scrape loop: copies every series of the registered targets
// into the TimeSeriesDb on a fixed interval (5 s by default, as in §4).
// Targets can be disabled at runtime to inject scrape gaps — the ">10 s
// without data" path that makes L3 converge its EWMAs back to defaults.
//
// Each target keeps a columnar snapshot plan (ColumnBlock) — SoA arrays of
// series pointers and interned TSDB ids — rebuilt only when the registry's
// version changes (i.e. a series was created). Steady-state scrapes
// therefore do zero string hashing, key building or map lookups: they are
// tight loops over contiguous pointer/SeriesId columns. Histogram bucket
// bounds are declared to the TSDB once at plan-build time, so each scrape
// appends one contiguous cumulative row from a reused scratch buffer — no
// per-scrape bounds or counts vector copies.
#pragma once

#include "l3/common/time.h"
#include "l3/metrics/registry.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace l3::metrics {

/// Periodically snapshots registries into a TimeSeriesDb.
class Scraper {
 public:
  /// @param sim   event loop driving the scrape schedule.
  /// @param tsdb  destination store (must outlive the scraper).
  Scraper(sim::Simulator& sim, TimeSeriesDb& tsdb) : sim_(sim), tsdb_(tsdb) {}
  ~Scraper() { stop(); }
  Scraper(const Scraper&) = delete;
  Scraper& operator=(const Scraper&) = delete;

  /// Registers a scrape target. The registry must outlive the scraper.
  void add_target(std::string name, const Registry& registry);

  /// Enables/disables scraping of a target (failure injection). Returns
  /// false if no such target exists.
  bool set_target_enabled(const std::string& name, bool enabled);

  /// Enables/disables every registered target at once (a full scrape
  /// outage, e.g. the Prometheus instance itself going away).
  void set_all_targets_enabled(bool enabled);

  /// Starts the periodic scrape, first firing after one interval.
  void start(SimDuration interval = 5.0);

  /// Stops the periodic scrape.
  void stop() { task_.cancel(); }

  /// Performs a single scrape of all enabled targets right now (also used
  /// to seed the TSDB before the first interval elapses).
  void scrape_once();

  SimDuration interval() const { return interval_; }
  std::size_t scrape_count() const { return scrapes_; }

  /// How many times any target's ColumnBlock was (re)built — steady state
  /// is one build per target, so this staying flat across scrapes is the
  /// O(changed-data) property the control_plane bench gates on.
  std::uint64_t plan_rebuilds() const { return plan_rebuilds_; }

 private:
  /// Columnar (SoA) snapshot plan of one target: parallel arrays of stable
  /// series pointers and their interned TSDB ids, in the registry's sorted
  /// enumeration order (a determinism invariant — it fixes both the TSDB
  /// interning order and the append order).
  struct ColumnBlock {
    std::vector<const Counter*> counters;
    std::vector<SeriesId> counter_ids;
    std::vector<const Gauge*> gauges;
    std::vector<SeriesId> gauge_ids;
    std::vector<const HistogramSeries*> histograms;
    std::vector<HistogramId> histogram_ids;
    /// Cumulative-row widths (bounds + 1), cached so the scrape loop never
    /// touches the bounds vectors.
    std::vector<std::uint32_t> histogram_widths;
  };

  struct Target {
    std::string name;
    const Registry* registry = nullptr;
    bool enabled = true;
    /// Registry version the plan below was built against (~0 = never).
    std::uint64_t planned_version = ~std::uint64_t{0};
    ColumnBlock plan;
  };

  /// (Re)builds `target`'s ColumnBlock, interning any new series names and
  /// declaring histogram bounds to the TSDB.
  void build_plan(Target& target);

  sim::Simulator& sim_;
  TimeSeriesDb& tsdb_;
  std::vector<Target> targets_;
  /// name -> targets_ index; first add_target wins on duplicate names
  /// (matching the old linear scan's first-match semantics).
  std::unordered_map<std::string, std::size_t> target_index_;
  /// Reused cumulative-row buffer, sized to the widest histogram planned.
  std::vector<double> row_scratch_;
  sim::PeriodicHandle task_;
  SimDuration interval_ = 5.0;
  std::size_t scrapes_ = 0;
  std::uint64_t plan_rebuilds_ = 0;
};

}  // namespace l3::metrics
