// Prometheus-style metric registry, mirroring the metric surface a Linkerd
// proxy exports (§4 "Metric collection"): monotone counters, gauges, and
// cumulative fixed-bucket latency histograms, identified by a metric name
// plus labels. Proxies hold direct handles to their series so the request
// hot path is a pointer bump; the Scraper walks the registry periodically.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/histogram.h"

#include <cstdint>
#include <deque>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace l3::metrics {

/// Sorted label set; part of a series identity.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Canonical series key: `name{k1=v1,k2=v2}` with labels sorted by key.
std::string series_key(const std::string& name, Labels labels);

/// Monotonically increasing counter (Prometheus counter semantics).
class Counter {
 public:
  /// Adds `delta` (>= 0).
  void add(double delta) {
    L3_EXPECTS(delta >= 0.0);
    value_ += delta;
  }
  void increment() { value_ += 1.0; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Instantaneous gauge (e.g. in-flight requests).
class Gauge {
 public:
  void set(double v) { value_ = v; }
  void add(double delta) { value_ += delta; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Cumulative-bucket histogram series (Prometheus histogram semantics).
/// `cumulative_counts()` has bounds().size() + 1 entries, the last being the
/// total (+Inf bucket).
class HistogramSeries {
 public:
  explicit HistogramSeries(std::vector<double> bounds)
      : histo_(std::move(bounds)) {}
  HistogramSeries() = default;

  void record(double value) { histo_.record(value); }

  const std::vector<double>& bounds() const { return histo_.bounds(); }

  /// Number of cumulative buckets: bounds().size() + 1 (+Inf last).
  std::size_t bucket_count() const { return histo_.counts().size(); }

  /// Writes the Prometheus cumulative counts into `out` (exactly
  /// bucket_count() entries) without allocating — the scrape hot path
  /// appends straight from a reused row buffer.
  void write_cumulative(std::span<double> out) const {
    const auto& counts = histo_.counts();
    L3_EXPECTS(out.size() == counts.size());
    double running = 0.0;
    for (std::size_t i = 0; i < counts.size(); ++i) {
      running += static_cast<double>(counts[i]);
      out[i] = running;
    }
  }

  /// Cumulative counts per Prometheus convention (allocating convenience
  /// form of write_cumulative).
  std::vector<double> cumulative_counts() const {
    std::vector<double> cum(bucket_count());
    write_cumulative(cum);
    return cum;
  }

  std::uint64_t total_count() const { return histo_.total_count(); }

 private:
  FixedBucketHistogram histo_;
};

/// Owns all metric series of one scrape target (e.g. all proxies of one
/// cluster, or the whole mesh in small setups).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Returns (creating on first use) the counter for name+labels. The
  /// reference stays valid for the registry's lifetime.
  Counter& counter(const std::string& name, Labels labels);

  /// Returns (creating on first use) the gauge for name+labels.
  Gauge& gauge(const std::string& name, Labels labels);

  /// Returns (creating on first use) the histogram for name+labels, with
  /// Linkerd default latency bounds unless `bounds` is supplied on creation.
  HistogramSeries& histogram(const std::string& name, Labels labels,
                             const std::vector<double>* bounds = nullptr);

  /// Visits every series; used by the Scraper.
  template <typename CounterFn, typename GaugeFn, typename HistoFn>
  void for_each(CounterFn on_counter, GaugeFn on_gauge,
                HistoFn on_histogram) const {
    for (const auto& [key, c] : counters_) on_counter(key, c->value());
    for (const auto& [key, g] : gauges_) on_gauge(key, g->value());
    for (const auto& [key, h] : histograms_) on_histogram(key, *h);
  }

  /// Visits every series handing out the stable object pointers (the same
  /// ones counter()/gauge()/histogram() return). The Scraper uses this to
  /// build its per-target snapshot plan once per registry version, after
  /// which steady-state scrapes read values straight through the pointers.
  template <typename CounterFn, typename GaugeFn, typename HistoFn>
  void for_each_entry(CounterFn on_counter, GaugeFn on_gauge,
                      HistoFn on_histogram) const {
    for (const auto& [key, c] : counters_) on_counter(key, c);
    for (const auto& [key, g] : gauges_) on_gauge(key, g);
    for (const auto& [key, h] : histograms_) on_histogram(key, h);
  }

  std::size_t series_count() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Bumped whenever a new series is created. Cached enumeration results
  /// (e.g. the Scraper's snapshot plan) stay valid while this is unchanged.
  std::uint64_t version() const { return version_; }

 private:
  // Metric objects live in deques (stable addresses across push_back, no
  // per-object allocation) and the maps only index them. Series created
  // together — e.g. the 7 counters a proxy registers per backend — land on
  // the same one or two cache lines, so a request's metric updates touch a
  // couple of lines instead of seven scattered heap allocations. The maps
  // stay the enumeration surface (sorted, deterministic export order).
  std::deque<Counter> counter_store_;
  std::deque<Gauge> gauge_store_;
  std::deque<HistogramSeries> histogram_store_;
  std::map<std::string, Counter*> counters_;
  std::map<std::string, Gauge*> gauges_;
  std::map<std::string, HistogramSeries*> histograms_;
  std::uint64_t version_ = 0;
};

}  // namespace l3::metrics
