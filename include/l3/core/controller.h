// The L3 controller — the C++ equivalent of the paper's Kubernetes operator
// (§4). One instance runs per source cluster (in production "L3 would most
// likely run on all clusters"). Every control interval (5 s) it:
//
//   1. queries the TimeSeriesDb (10 s windows) for each managed
//      TrafficSplit backend: RPS, success rate, P99 of successful-request
//      latency (from histogram buckets) and mean in-flight requests;
//   2. feeds the samples into per-backend EWMA / PeakEWMA filters with the
//      §4 defaults (latency 5 s @ half-life 5 s, success 100 % @ 10 s,
//      RPS 0 @ 10 s, in-flight @ 5 s). Degraded-metrics handling (§4): for
//      data gaps shorter than the staleness threshold a backend's signals
//      freeze at their last filtered value; once the gap reaches the
//      threshold (10 s — measured from the last sample, or from manage()
//      for a backend that never produced one) every tick converges the
//      filters back toward their defaults in small increments;
//   3. hands the filtered signals to the configured LoadBalancingPolicy
//      (L3, C3, round-robin, ...) and pushes the resulting weights through
//      the ControlPlane.
//
// The controller also exports its internal state (current weights and
// filtered signals) as gauges into a Registry, mirroring the paper's
// Prometheus/OpenTelemetry introspection.
#pragma once

#include "l3/common/time.h"
#include "l3/lb/policy.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/ewma.h"
#include "l3/metrics/tsdb.h"
#include "l3/sim/simulator.h"
#include "l3/trace/journal.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace l3::core {

/// Controller tunables; defaults follow §4 of the paper.
struct ControllerConfig {
  /// Control-loop period (§4: 5 s — balances freshness against Prometheus
  /// and control-plane load).
  SimDuration control_interval = 5.0;
  /// Trailing query window (§4: 10 s so it spans >= 2 scrape samples).
  SimDuration query_window = 10.0;
  /// Which percentile represents tail latency (§3.1: 0.99; 0.98 / 0.999
  /// are supported configurations).
  double quantile = 0.99;
  /// EWMA vs PeakEWMA for the latency signal (§5.2.2).
  metrics::FilterKind latency_filter = metrics::FilterKind::kEwma;

  // EWMA default values (§4).
  double default_latency = 5.0;       ///< 5 s
  double default_success_rate = 1.0;  ///< 100 %
  double default_rps = 0.0;
  double default_inflight = 0.0;

  // EWMA half-lives (§4).
  SimDuration latency_half_life = 5.0;
  SimDuration inflight_half_life = 5.0;
  SimDuration success_half_life = 10.0;
  SimDuration rps_half_life = 10.0;

  /// After this long without retrievable metrics a backend's filters start
  /// converging back to their defaults (§4: "after at least 10 seconds
  /// without any traffic" — the boundary is inclusive, and the clock for a
  /// never-scraped backend starts at manage() time). Below the threshold
  /// signals freeze at their last filtered value.
  SimDuration staleness = 10.0;

  /// Export controller-internal state as gauges (weight + filtered signals
  /// per backend) into the source cluster's registry.
  bool export_introspection = true;

  /// Decision-journal capacity in events (0 disables journaling). Each
  /// control tick records one event per managed split.
  std::size_t journal_capacity = 4096;

  /// §7 future work: derive the penalty factor P dynamically from the
  /// observed round-trip latency of FAILED requests instead of a constant.
  /// Effective only when a penalty hook is installed (see below).
  bool dynamic_penalty = false;
  /// Half-life of the failed-request latency filter for dynamic P.
  SimDuration penalty_half_life = 30.0;
};

/// Filtered per-backend controller state, exposed for introspection/tests.
struct BackendStateView {
  std::string dst_cluster;
  double latency_p99 = 0.0;
  double success_rate = 1.0;
  double rps = 0.0;
  double inflight = 0.0;
  std::uint64_t weight = 0;
};

/// Per-split controller state view.
struct SplitStateView {
  std::string service;
  double total_rps_ewma = 0.0;
  double total_rps_last = 0.0;
  std::vector<BackendStateView> backends;
};

/// The per-cluster load-balancing controller.
class L3Controller {
 public:
  /// @param source  the cluster whose outbound TrafficSplits this instance
  ///                manages (and whose registry it reads labels from).
  L3Controller(mesh::Mesh& mesh, metrics::TimeSeriesDb& tsdb,
               mesh::ClusterId source,
               std::unique_ptr<lb::LoadBalancingPolicy> policy,
               ControllerConfig config = {});
  ~L3Controller();
  L3Controller(const L3Controller&) = delete;
  L3Controller& operator=(const L3Controller&) = delete;

  /// Registers one TrafficSplit (must originate from this controller's
  /// source cluster) with the control loop.
  void manage(mesh::TrafficSplit& split);

  /// Registers every TrafficSplit currently existing for the source
  /// cluster. Splits created later need explicit manage() calls.
  void manage_all();

  /// Starts the periodic control loop.
  void start();

  /// Stops the control loop.
  void stop();

  /// Runs one control iteration immediately (tests / manual stepping).
  void tick();

  /// Pauses/resumes weight application without stopping filtering — the
  /// follower mode of the HA deployment (§4: only the leader changes
  /// weights).
  void set_active(bool active) { active_ = active; }
  bool active() const { return active_; }

  /// Installs the hook the dynamic-penalty estimator drives: called each
  /// tick with the filtered failed-request latency (seconds). Wire it to
  /// the policy's penalty parameter to enable §7's adaptive P.
  void set_penalty_hook(std::function<void(double)> hook) {
    penalty_hook_ = std::move(hook);
  }

  /// Introspection snapshot of all managed splits.
  std::vector<SplitStateView> snapshot() const;

  lb::LoadBalancingPolicy& policy() { return *policy_; }
  const lb::LoadBalancingPolicy& policy() const { return *policy_; }
  const ControllerConfig& config() const { return config_; }
  std::uint64_t ticks() const { return ticks_; }

  /// The decision journal (empty when journal_capacity == 0).
  const trace::DecisionJournal& journal() const { return journal_; }
  trace::DecisionJournal& journal() { return journal_; }

 private:
  struct BackendFilters;
  struct ManagedSplit;

  void tick_split(ManagedSplit& managed);

  mesh::Mesh& mesh_;
  metrics::TimeSeriesDb& tsdb_;
  mesh::ClusterId source_;
  std::unique_ptr<lb::LoadBalancingPolicy> policy_;
  ControllerConfig config_;
  std::vector<std::unique_ptr<ManagedSplit>> managed_;
  trace::DecisionJournal journal_;
  sim::PeriodicHandle task_;
  bool active_ = true;
  std::uint64_t ticks_ = 0;
  std::function<void(double)> penalty_hook_;
};

}  // namespace l3::core
