// Lease-based leader election for running L3 in high-availability mode
// (§4: multiple replicas, "only a single replica acts as the leader and
// changes weights through a lease-based locking leader election mechanism").
// Modelled after Kubernetes' coordination.k8s.io leases: candidates renew a
// shared lease; when the holder stops renewing (crash), the lease expires
// and another candidate acquires it.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"
#include "l3/sim/simulator.h"

#include <functional>
#include <string>
#include <vector>

namespace l3::core {

/// Shared lease arbitrating leadership among controller replicas.
class LeaderElection {
 public:
  /// Per-candidate callbacks fired on leadership transitions.
  struct Callbacks {
    std::function<void()> on_elected;
    std::function<void()> on_deposed;
  };

  /// @param lease_duration  how long a held lease stays valid unrenewed.
  /// @param renew_interval  how often candidates try to acquire/renew.
  LeaderElection(sim::Simulator& sim, SimDuration lease_duration = 15.0,
                 SimDuration renew_interval = 5.0);
  ~LeaderElection() { stop(); }
  LeaderElection(const LeaderElection&) = delete;
  LeaderElection& operator=(const LeaderElection&) = delete;

  /// Registers a candidate replica; returns its id.
  std::size_t add_candidate(std::string name, Callbacks callbacks = {});

  /// Starts the renewal loop.
  void start();
  void stop() { task_.cancel(); }

  /// Marks a candidate alive/crashed. A crashed leader stops renewing; the
  /// lease expires after lease_duration and a new leader takes over.
  void set_alive(std::size_t candidate, bool alive);

  /// Currently acknowledged leader, or npos while the lease is vacant.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t leader() const { return leader_; }

  bool is_leader(std::size_t candidate) const { return leader_ == candidate; }

  /// One election round (exposed for tests).
  void election_round();

  SimDuration lease_duration() const { return lease_duration_; }
  std::uint64_t transitions() const { return transitions_; }

 private:
  struct Candidate {
    std::string name;
    Callbacks callbacks;
    bool alive = true;
  };

  void depose_current();

  sim::Simulator& sim_;
  SimDuration lease_duration_;
  SimDuration renew_interval_;
  std::vector<Candidate> candidates_;
  std::size_t leader_ = npos;
  SimTime lease_expiry_ = 0.0;
  sim::PeriodicHandle task_;
  std::uint64_t transitions_ = 0;
};

}  // namespace l3::core
