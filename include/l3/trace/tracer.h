// The Tracer: per-request span collection with configurable sampling and a
// bounded in-memory buffer of completed traces.
//
// Sampling modes:
//  * kOff  — tracing disabled; every start_trace() returns an unsampled
//    context after a single branch, and instrumented layers do no
//    allocations and no further work (the ISSUE's hot-path requirement).
//  * kRatio — head sampling: a trace is kept or dropped at the root with
//    probability `ratio`, decided from the tracer's OWN rng stream so
//    enabling tracing never perturbs the workload's random streams (the
//    simulator's determinism guarantee).
//  * kTail — tail-triggered: every request is recorded, but at trace end
//    only traces whose root latency >= `tail_threshold` are kept — "show me
//    the slow ones", the mode tail-latency attribution wants.
//
// Memory is O(max_traces × max_spans_per_trace) plus the spans of requests
// currently in flight, independent of run length.
#pragma once

#include "l3/common/rng.h"
#include "l3/common/time.h"
#include "l3/sim/simulator.h"
#include "l3/trace/span.h"

#include <cstdint>
#include <deque>
#include <map>
#include <string_view>
#include <vector>

namespace l3::trace {

enum class SamplingMode : std::uint8_t { kOff, kRatio, kTail };

struct TracerConfig {
  SamplingMode sampling = SamplingMode::kOff;
  /// Fraction of traces kept in kRatio mode (0..1].
  double ratio = 1.0;
  /// kTail: keep only traces with root latency >= this (seconds).
  SimDuration tail_threshold = 0.100;
  /// Completed-trace ring buffer capacity; oldest traces are evicted.
  std::size_t max_traces = 1024;
  /// Per-trace span cap; children beyond it are dropped (not recorded).
  std::size_t max_spans_per_trace = 256;
};

/// One completed (kept) trace: the root's summary plus all spans, root
/// first. Span parent_ids always reference spans within the same record.
struct TraceRecord {
  std::uint64_t trace_id = 0;
  std::string root_name;
  SimTime start = 0.0;
  SimTime end = 0.0;
  SimDuration latency = 0.0;  ///< root duration
  SpanStatus status = SpanStatus::kUnset;
  std::vector<Span> spans;
};

class Tracer {
 public:
  Tracer(sim::Simulator& sim, TracerConfig config, std::uint64_t seed = 1);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// False iff sampling is kOff — the one branch unsampled paths pay.
  bool enabled() const { return config_.sampling != SamplingMode::kOff; }

  /// Opens a root span and makes the head-sampling decision. Returns an
  /// unsampled context when tracing is off or the trace was sampled out.
  SpanContext start_trace(std::string_view name, std::string_view cluster,
                          std::string_view service);

  /// Opens a child span under `parent`. No-op (unsampled context) when the
  /// parent is unsampled, the trace already finalised, or the per-trace
  /// span cap is reached.
  SpanContext start_span(SpanContext parent, SpanKind kind,
                         std::string_view name, std::string_view cluster,
                         std::string_view service);

  /// Records an already-finished span (e.g. a WAN transit whose duration is
  /// known when it is scheduled) without the start/end round trip.
  void add_span(SpanContext parent, SpanKind kind, std::string_view name,
                std::string_view cluster, std::string_view service,
                SimTime start, SimTime end,
                SpanStatus status = SpanStatus::kOk);

  /// Closes a span at the current sim time. Late calls against an already
  /// finalised trace are ignored (the span stays `truncated`).
  void end_span(SpanContext span, SpanStatus status = SpanStatus::kOk);

  /// Closes the root span and finalises the trace: tail filtering, then
  /// admission into the bounded completed buffer. Spans still open are
  /// force-closed at the root's end and marked truncated.
  void end_trace(SpanContext root, SpanStatus status = SpanStatus::kOk);

  /// Completed traces, oldest first.
  const std::deque<TraceRecord>& traces() const { return completed_; }

  /// Drops all completed traces (pending ones are unaffected).
  void clear() { completed_.clear(); }

  const TracerConfig& config() const { return config_; }

  // --- counters (lifetime) --------------------------------------------------
  std::uint64_t started() const { return started_; }       ///< start_trace calls
  std::uint64_t sampled_out() const { return sampled_out_; }  ///< head-dropped
  std::uint64_t kept() const { return kept_; }             ///< admitted traces
  std::uint64_t dropped_fast() const { return dropped_fast_; }  ///< tail-dropped
  std::uint64_t evicted() const { return evicted_; }  ///< ring-buffer evictions
  std::uint64_t dropped_spans() const { return dropped_spans_; }  ///< cap hits

  /// Traces currently in flight (for tests / leak checks).
  std::size_t pending_count() const { return pending_.size(); }

 private:
  struct Pending {
    TraceRecord record;
    std::size_t open = 0;  ///< spans not yet ended
  };

  Pending* find_pending(std::uint64_t trace_id);
  Span* append_span(Pending& pending, SpanContext parent, SpanKind kind,
                    std::string_view name, std::string_view cluster,
                    std::string_view service, SimTime start);

  sim::Simulator& sim_;
  TracerConfig config_;
  SplitRng rng_;
  std::uint64_t next_trace_id_ = 1;
  std::uint64_t next_span_id_ = 1;
  std::map<std::uint64_t, Pending> pending_;
  std::deque<TraceRecord> completed_;

  std::uint64_t started_ = 0;
  std::uint64_t sampled_out_ = 0;
  std::uint64_t kept_ = 0;
  std::uint64_t dropped_fast_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t dropped_spans_ = 0;
};

}  // namespace l3::trace
