// Trace exporters. `write_chrome_trace` renders completed traces in the
// Chrome trace-event JSON format ("X" complete events inside a
// `traceEvents` array), loadable in Perfetto / chrome://tracing: each trace
// becomes one process (pid), each span one lane (tid), with cluster /
// service / status / parentage carried in `args`.
#pragma once

#include "l3/trace/tracer.h"

#include <iosfwd>
#include <string>
#include <string_view>

namespace l3::trace {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

/// Writes `traces` as Chrome trace-event JSON. Deterministic: output depends
/// only on the trace contents.
void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::ostream& os);

/// Convenience over the tracer's completed buffer.
inline void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  write_chrome_trace(tracer.traces(), os);
}

/// Chrome trace-event JSON as a string.
std::string chrome_trace_json(const Tracer& tracer);

}  // namespace l3::trace
