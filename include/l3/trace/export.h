// Trace exporters. `write_chrome_trace` renders completed traces in the
// Chrome trace-event JSON format ("X" complete events inside a
// `traceEvents` array), loadable in Perfetto / chrome://tracing: each trace
// becomes one process (pid), each span one lane (tid), with cluster /
// service / status / parentage carried in `args`.
#pragma once

#include "l3/obs/recorder.h"
#include "l3/trace/tracer.h"

#include <iosfwd>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace l3::trace {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string json_escape(std::string_view s);

/// A point-in-time annotation of an injected fault transition, rendered as
/// a Chrome "instant" event so fault windows line up with the request spans
/// they disturb. Produced by chaos::FaultInjector (which the trace module
/// deliberately does not depend on).
struct FaultMarker {
  SimTime time = 0.0;
  std::string name;   ///< e.g. "crash:api@cluster-2"
  std::string phase;  ///< "begin" or "end"
};

/// Writes `traces` as Chrome trace-event JSON. Deterministic: output depends
/// only on the trace contents.
void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::ostream& os);

/// As above, additionally rendering `markers` as global instant events in a
/// dedicated "faults" process (pid one past the last trace).
void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::span<const FaultMarker> markers,
                        std::ostream& os);

/// As above, additionally rendering an obs snapshot — `rt.counter.*` /
/// `rt.gauge.*` counter tracks ("C" events) plus flight-recorder ring
/// instants — in a dedicated "obs" process after the faults process.
/// `snapshot` may be null (same output as the two-argument overload).
void write_chrome_trace(const std::deque<TraceRecord>& traces,
                        std::span<const FaultMarker> markers,
                        const obs::Snapshot* snapshot, std::ostream& os);

/// Convenience over the tracer's completed buffer.
inline void write_chrome_trace(const Tracer& tracer, std::ostream& os) {
  write_chrome_trace(tracer.traces(), os);
}

/// Chrome trace-event JSON as a string.
std::string chrome_trace_json(const Tracer& tracer);

}  // namespace l3::trace
