// Per-hop latency-breakdown analysis over completed traces: walks each
// trace's critical path (the chain of spans that actually gated the root's
// completion) and attributes its self-time to WAN transit, replica queueing,
// service execution, client-side time, and other — answering "was that tail
// request slow because of the network, the queue, or the service?" The
// aggregate view is a percentile table across traces per category.
#pragma once

#include "l3/common/time.h"
#include "l3/trace/tracer.h"

#include <cstddef>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace l3::trace {

/// Span indices (into `trace.spans`) on the critical path, in the order the
/// path is walked (root first, each node before its on-path children).
std::vector<std::size_t> critical_path(const TraceRecord& trace);

/// Critical-path self-time of one trace, bucketed by span kind (seconds).
/// The buckets sum to ~`total` (the root latency) up to clamping of
/// out-of-window children.
struct TraceAttribution {
  SimDuration total = 0.0;   ///< root latency
  SimDuration wan = 0.0;     ///< network transit on the critical path
  SimDuration queue = 0.0;   ///< replica queue wait on the critical path
  SimDuration service = 0.0; ///< server-side execution self-time
  SimDuration proxy = 0.0;   ///< proxy self-time (pick, timeout slack)
  SimDuration client = 0.0;  ///< root self-time (e.g. retry backoff)
  SimDuration other = 0.0;
};

TraceAttribution attribute_critical_path(const TraceRecord& trace);

/// One row of the aggregate breakdown: distribution of a category's
/// critical-path time across traces.
struct BreakdownRow {
  std::string category;
  double mean = 0.0;  ///< seconds
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  double share = 0.0;  ///< category total / latency total over all traces
};

struct BreakdownSummary {
  std::size_t trace_count = 0;
  std::vector<BreakdownRow> rows;  ///< wan, queue, service, proxy, client,
                                   ///< other, total — in that order
};

BreakdownSummary summarize_breakdown(const std::deque<TraceRecord>& traces);

/// Renders the summary as an aligned ASCII table (milliseconds).
void print_breakdown(const BreakdownSummary& summary, std::ostream& os);

}  // namespace l3::trace
