// The controller decision journal: one structured event per control tick
// per managed TrafficSplit, capturing the filtered signals the policy saw,
// the raw policy weights, the post-rate-control weights, and the weights
// actually applied — the audit trail that answers "why did traffic shift at
// t=T?" without replaying the run. Bounded: the oldest events are evicted
// once capacity is reached.
#pragma once

#include "l3/common/time.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <string>
#include <vector>

namespace l3::trace {

/// One backend's slice of a decision.
struct BackendDecision {
  std::string dst_cluster;
  // Filtered signals as handed to the policy (post-EWMA).
  double latency_p99 = 0.0;  ///< seconds
  double success_rate = 1.0;
  double rps = 0.0;
  double inflight = 0.0;
  /// Weight straight out of the weighting algorithm (Algorithm 1), before
  /// rate control.
  double raw_weight = 0.0;
  /// After rate control (Algorithm 2), before integer finalisation.
  double rate_controlled_weight = 0.0;
  /// The weight written to (or, for an inactive follower, that would have
  /// been written to) the TrafficSplit.
  std::uint64_t applied_weight = 0;
};

/// One control tick for one TrafficSplit.
struct DecisionEvent {
  SimTime time = 0.0;
  std::uint64_t tick = 0;
  std::string source_cluster;
  std::string service;
  std::string policy;
  /// False when the controller was a passive follower (weights not pushed).
  bool applied = true;
  double total_rps_ewma = 0.0;
  double total_rps_last = 0.0;
  std::vector<BackendDecision> backends;
};

/// Bounded in-memory journal of decision events.
class DecisionJournal {
 public:
  explicit DecisionJournal(std::size_t capacity = 4096);

  void record(DecisionEvent event);

  /// Events oldest-first.
  const std::deque<DecisionEvent>& events() const { return events_; }

  /// Most recent event for (service); nullptr when none exists.
  const DecisionEvent* latest(const std::string& service) const;

  std::uint64_t recorded() const { return recorded_; }
  std::uint64_t evicted() const { return evicted_; }
  std::size_t capacity() const { return capacity_; }

  /// Dumps the journal as a JSON array of event objects (deterministic
  /// field order), for offline inspection next to the Chrome trace.
  void write_json(std::ostream& os) const;

  void clear() { events_.clear(); }

 private:
  std::size_t capacity_;
  std::deque<DecisionEvent> events_;
  std::uint64_t recorded_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace l3::trace
