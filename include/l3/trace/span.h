// Span vocabulary of the distributed-tracing subsystem — the OpenTelemetry
// half of the paper's observability story (§4: internal state "exposed
// through Prometheus or OpenTelemetry metrics"). A trace is the tree of
// spans one client request produces as it flows client → proxy → WAN →
// backend (→ DSB fan-out); the SpanContext is the propagation token threaded
// through those layers.
#pragma once

#include "l3/common/time.h"

#include <cstdint>
#include <string>

namespace l3::trace {

/// What part of the request path a span covers — the categories the
/// latency-breakdown analysis attributes critical-path time to.
enum class SpanKind : std::uint8_t {
  kClient,    ///< root: the client's view of one request (incl. retries)
  kProxy,     ///< one proxy attempt: pick + transit + server + transit
  kWan,       ///< one-way network transit between clusters
  kQueue,     ///< time waiting for a replica concurrency slot
  kService,   ///< server-side handling (execution + downstream calls)
  kInternal,  ///< anything else
};

enum class SpanStatus : std::uint8_t {
  kUnset,    ///< still open (or truncated at trace finalisation)
  kOk,
  kError,    ///< failed response / rejection
  kTimeout,  ///< client-side timeout fired
};

const char* to_string(SpanKind kind);
const char* to_string(SpanStatus status);

/// The propagated token: identifies the trace and the span that acts as
/// parent for anything started under this context. POD by design — passing
/// it around costs nothing, and `sampled() == false` (the zero value) is the
/// single branch unsampled hot paths pay.
struct SpanContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool sampled() const { return trace_id != 0; }
};

/// One recorded span. Times are simulated seconds (SimTime).
struct Span {
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;  ///< 0 = root
  SpanKind kind = SpanKind::kInternal;
  SpanStatus status = SpanStatus::kUnset;
  /// Still open when the trace finalised (e.g. server work outliving a
  /// client timeout); `end` was forced to the trace end.
  bool truncated = false;
  std::string name;     ///< e.g. "proxy:api", "wan:paris->milan"
  std::string cluster;  ///< cluster the span executes in (src for WAN)
  std::string service;  ///< service the span belongs to
  SimTime start = 0.0;
  SimTime end = 0.0;

  SimDuration duration() const { return end - start; }
};

}  // namespace l3::trace
