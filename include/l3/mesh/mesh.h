// The Mesh facade: clusters + WAN + deployments + per-source-cluster proxies
// and TrafficSplits + control plane + health checking + one metrics Registry
// per cluster. This is the multi-cluster Linkerd-on-Kubernetes equivalent
// everything else plugs into (Figure 3/5 of the paper).
#pragma once

#include "l3/common/rng.h"
#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/health.h"
#include "l3/mesh/proxy.h"
#include "l3/mesh/traffic_split.h"
#include "l3/mesh/types.h"
#include "l3/mesh/wan.h"
#include "l3/metrics/registry.h"
#include "l3/sim/simulator.h"
#include "l3/trace/span.h"

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3::sim {
class ShardRouter;  // cross-shard event posting (l3/sim/shard_engine.h)
}  // namespace l3::sim

namespace l3::mesh {

/// Mesh-wide configuration.
struct MeshConfig {
  /// One-way in-cluster network delay (pod→pod through the sidecars).
  SimDuration local_delay = 0.0005;
  double local_jitter_frac = 0.2;
  /// Control-plane weight-propagation delay (0 = instant).
  SimDuration propagation_delay = 0.0;
  /// Client-side request timeout for all proxies; 0 disables.
  SimDuration request_timeout = 30.0;
  /// Health-probe interval (0 disables health checking).
  SimDuration health_probe_interval = 10.0;
  /// Initial TrafficSplit weight per backend (equal split, i.e. the
  /// round-robin default until a policy writes weights).
  std::uint64_t initial_weight = 1000;
  /// Routing mode for every proxy (weighted TrafficSplit vs per-request
  /// PeakEWMA-P2C).
  RoutingMode routing = RoutingMode::kWeighted;
  /// Envoy-style outlier detection applied by every proxy (§5.1).
  OutlierDetectionConfig outlier_detection;
  /// Data-plane cost model for every proxy (DESIGN.md §16): sidecar CPU,
  /// bounded-concurrency service stage, per-edge connection pools with
  /// mTLS handshake costs. Zero-cost defaults = byte-identical behaviour.
  ProxyCostConfig proxy_cost;
  /// Sharded-run wiring: when set, every proxy this mesh creates uses the
  /// presampled WAN discipline and posts remote calls through this router
  /// instead of scheduling directly (see Proxy::enable_presampled). The
  /// router must belong to the shard that owns this mesh's simulator.
  sim::ShardRouter* shard_router = nullptr;
};

/// A multi-cluster service mesh instance bound to one simulator.
class Mesh {
 public:
  Mesh(sim::Simulator& sim, SplitRng rng, MeshConfig config = {});

  Mesh(const Mesh&) = delete;
  Mesh& operator=(const Mesh&) = delete;

  // --- topology -----------------------------------------------------------

  /// Adds a cluster; returns its id. Clusters must be added before
  /// deployments that reference them.
  ClusterId add_cluster(std::string name, std::string region = "");

  const std::vector<Cluster>& clusters() const { return clusters_; }
  const std::vector<std::string>& cluster_names() const { return names_; }

  WanModel& wan() { return wan_; }
  const WanModel& wan() const { return wan_; }

  // --- deployments --------------------------------------------------------

  /// Deploys `service` into `cluster`. All deployments of a service must
  /// exist before the first proxy/call for that service is created.
  ServiceDeployment& deploy(const std::string& service, ClusterId cluster,
                            DeploymentConfig config,
                            std::unique_ptr<ServiceBehavior> behavior);

  /// Registers a deployment OWNED BY ANOTHER SHARD's mesh as a routing
  /// target in this one: proxies created here include it as a backend, and
  /// the presampled send path posts its work to the owning shard through
  /// the configured shard_router. The pointed-to deployment must outlive
  /// this mesh; `cluster` must not also have a local deployment of the
  /// same service.
  void declare_remote(const std::string& service, ClusterId cluster,
                      ServiceDeployment* deployment);

  /// nullptr when the service is not deployed in that cluster.
  ServiceDeployment* find_deployment(const std::string& service,
                                     ClusterId cluster);

  /// All deployments of a service, ordered by cluster id — locally deployed
  /// and declared-remote alike.
  std::vector<ServiceDeployment*> deployments_of(const std::string& service);

  // --- routing ------------------------------------------------------------

  /// The proxy for (source cluster, service); created (with an equal-weight
  /// TrafficSplit over every deployment of `service`) on first use.
  Proxy& proxy(ClusterId source, const std::string& service);

  /// Sends one request from `source` to `service` through the mesh.
  void call(ClusterId source, const std::string& service, int depth,
            ResponseFn done) {
    proxy(source, service).send(depth, std::move(done));
  }

  /// As above, propagating a trace context so the proxy/WAN/server spans of
  /// this hop attach to the caller's span tree.
  void call(ClusterId source, const std::string& service, int depth,
            trace::SpanContext parent, ResponseFn done) {
    proxy(source, service).send(depth, parent, std::move(done));
  }

  /// nullptr until the corresponding proxy has been created.
  TrafficSplit* find_split(ClusterId source, const std::string& service);

  /// Every TrafficSplit whose source is `source` (the set one per-cluster
  /// L3 controller instance manages), in creation order.
  std::vector<TrafficSplit*> splits_of_source(ClusterId source);

  // --- control & observability ---------------------------------------------

  ControlPlane& control_plane() { return control_plane_; }
  HealthChecker& health() { return health_; }

  /// Attaches a tracer to every proxy and deployment, current and future
  /// (nullptr detaches). The tracer must outlive the mesh or be detached
  /// before destruction. With no tracer (or a kOff tracer) the request hot
  /// path stays allocation-free.
  void set_tracer(trace::Tracer* tracer);
  trace::Tracer* tracer() const { return tracer_; }

  /// The metrics registry of one cluster (scrape target).
  metrics::Registry& registry(ClusterId cluster);

  sim::Simulator& simulator() { return sim_; }
  const MeshConfig& config() const { return config_; }

 private:
  sim::Simulator& sim_;
  SplitRng rng_;
  MeshConfig config_;
  trace::Tracer* tracer_ = nullptr;
  WanModel wan_;
  ControlPlane control_plane_;
  HealthChecker health_;
  std::vector<Cluster> clusters_;
  std::vector<std::string> names_;
  std::vector<std::unique_ptr<metrics::Registry>> registries_;
  // key: service name → per-cluster deployments
  std::map<std::string, std::map<ClusterId, std::unique_ptr<ServiceDeployment>>>
      deployments_;
  // key: service name → deployments owned by other shards (not owned here)
  std::map<std::string, std::map<ClusterId, ServiceDeployment*>>
      remote_deployments_;
  // key: (source, service)
  std::map<std::pair<ClusterId, std::string>, std::unique_ptr<TrafficSplit>>
      splits_;
  std::map<std::pair<ClusterId, std::string>, std::unique_ptr<Proxy>> proxies_;
  std::vector<std::pair<ClusterId, TrafficSplit*>> split_order_;
};

}  // namespace l3::mesh
