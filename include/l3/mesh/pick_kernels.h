// Specialized cumulative-weight search kernels for the weighted picker.
//
// Every kernel computes the same function: the index of the FIRST entry of a
// non-decreasing cumulative-weight table that exceeds `r` (an upper_bound).
// Because they are exact-equivalent, the proxy can select one at runtime per
// topology size without perturbing a single pick — the golden-trace and
// chi-square suites run against each kernel to enforce that.
//
//  * kLinear     — short forward scan; fastest when the table fits in one or
//                  two cache lines (the paper's 3-cluster topology).
//  * kMultiLane  — branch-free rank computation: counts entries <= r in four
//                  independent lanes per iteration. The comparisons carry no
//                  loop-carried dependency, so the compiler vectorizes it
//                  (SIMD compare + subtract); best for mid-size tables.
//  * kBinary     — branchless binary search (conditional-move halving);
//                  O(log n) probes for the largest tables the 64-bit
//                  availability mask admits.
//
// Selection thresholds live in select_weighted_kernel(); tests force a
// specific kernel through set_weighted_kernel_override().
#pragma once

#include <cstddef>
#include <cstdint>

namespace l3::mesh::pick {

enum class WeightedKernel : std::uint8_t {
  kLinear = 0,
  kMultiLane = 1,
  kBinary = 2,
};

inline constexpr std::size_t kWeightedKernelCount = 3;

/// Stable display names, indexed by WeightedKernel (report JSON, --profile).
inline const char* kernel_name(WeightedKernel k) {
  switch (k) {
    case WeightedKernel::kLinear: return "linear";
    case WeightedKernel::kMultiLane: return "multilane";
    case WeightedKernel::kBinary: return "binary";
  }
  return "unknown";
}

// Tables up to kLinearMax entries take the forward scan; larger tables up to
// kMultiLaneMax take the vectorizable rank count; anything beyond (the mask
// admits at most 64 backends) takes the branchless binary search.
inline constexpr std::size_t kLinearMax = 8;
inline constexpr std::size_t kMultiLaneMax = 32;

/// Test-only override slot: -1 selects by size (production), otherwise the
/// forced WeightedKernel value. A namespace-scope inline variable (not a
/// function-local static) so reading it on the per-pick path is a plain
/// load, no init-guard check.
inline int g_weighted_kernel_override = -1;

inline int weighted_kernel_override() { return g_weighted_kernel_override; }
inline void set_weighted_kernel_override(int forced) {
  g_weighted_kernel_override = forced;
}

inline WeightedKernel select_weighted_kernel(std::size_t n) {
  const int forced = g_weighted_kernel_override;
  if (forced >= 0) return static_cast<WeightedKernel>(forced);
  if (n <= kLinearMax) return WeightedKernel::kLinear;
  if (n <= kMultiLaneMax) return WeightedKernel::kMultiLane;
  return WeightedKernel::kBinary;
}

/// First i with cum[i] > r, by forward scan. Requires such an i to exist
/// (r < cum[n-1]), which the caller guarantees by clamping r below the total.
inline std::size_t search_linear(const std::uint64_t* cum, std::size_t /*n*/,
                                 std::uint64_t r) {
  std::size_t i = 0;
  while (cum[i] <= r) ++i;
  return i;
}

/// First i with cum[i] > r == the number of entries <= r (the table is
/// non-decreasing). Four independent comparisons per iteration, no
/// loop-carried branch: auto-vectorizes to SIMD compare/accumulate.
inline std::size_t search_multilane(const std::uint64_t* cum, std::size_t n,
                                    std::uint64_t r) {
  std::size_t rank = 0;
  std::size_t i = 0;
  const std::size_t lanes_end = n & ~std::size_t{3};
  for (; i < lanes_end; i += 4) {
    rank += static_cast<std::size_t>(cum[i] <= r) +
            static_cast<std::size_t>(cum[i + 1] <= r) +
            static_cast<std::size_t>(cum[i + 2] <= r) +
            static_cast<std::size_t>(cum[i + 3] <= r);
  }
  for (; i < n; ++i) rank += static_cast<std::size_t>(cum[i] <= r);
  return rank;
}

/// Branchless binary search: every halving step advances by a conditional
/// move, never a taken/not-taken branch, so it does not pollute the branch
/// predictor with data-dependent history.
inline std::size_t search_binary(const std::uint64_t* cum, std::size_t n,
                                 std::uint64_t r) {
  std::size_t pos = 0;
  std::size_t len = n;
  while (len > 1) {
    const std::size_t half = len / 2;
    pos += (cum[pos + half - 1] <= r) ? half : 0;
    len -= half;
  }
  return pos;
}

inline std::size_t search(WeightedKernel k, const std::uint64_t* cum,
                          std::size_t n, std::uint64_t r) {
  switch (k) {
    case WeightedKernel::kLinear: return search_linear(cum, n, r);
    case WeightedKernel::kMultiLane: return search_multilane(cum, n, r);
    case WeightedKernel::kBinary: return search_binary(cum, n, r);
  }
  return search_linear(cum, n, r);
}

/// Batch form: resolves `m` draws against one table load. The kernel switch
/// is hoisted out of the loop, so each element runs the specialized body
/// directly; results are identical to m scalar calls in order.
inline void search_batch(WeightedKernel k, const std::uint64_t* cum,
                         std::size_t n, const std::uint64_t* rs, std::size_t m,
                         std::uint32_t* out) {
  switch (k) {
    case WeightedKernel::kLinear:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = static_cast<std::uint32_t>(search_linear(cum, n, rs[j]));
      }
      return;
    case WeightedKernel::kMultiLane:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = static_cast<std::uint32_t>(search_multilane(cum, n, rs[j]));
      }
      return;
    case WeightedKernel::kBinary:
      for (std::size_t j = 0; j < m; ++j) {
        out[j] = static_cast<std::uint32_t>(search_binary(cum, n, rs[j]));
      }
      return;
  }
}

}  // namespace l3::mesh::pick
