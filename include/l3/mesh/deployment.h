// A service deployment: N replicas of one service inside one cluster — the
// unit a TrafficSplit backend points at. Incoming requests are spread over
// replicas least-loaded-first (the in-cluster balancing Kubernetes/Linkerd
// provides); the application logic itself is pluggable via ServiceBehavior
// so the same substrate hosts both trace-replay API workloads (§5.1 "TIER
// Mobility") and the DeathStarBench call graph.
#pragma once

#include "l3/common/rng.h"
#include "l3/common/slot_pool.h"
#include "l3/common/time.h"
#include "l3/mesh/replica.h"
#include "l3/mesh/types.h"
#include "l3/sim/simulator.h"
#include "l3/trace/span.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3 {
namespace trace {
class Tracer;  // spans are recorded only when a tracer is attached
}  // namespace trace

namespace mesh {

class Mesh;  // behaviors may issue downstream calls through the mesh

/// Everything a behavior may touch while handling one request.
struct BehaviorContext {
  sim::Simulator& sim;   ///< to schedule execution-time delays
  Mesh& mesh;            ///< to call downstream services
  ClusterId cluster;     ///< the cluster this replica runs in
  SplitRng& rng;         ///< deployment-local random stream
  int depth;             ///< call depth (loop guard for downstream calls)
  /// Trace context of the enclosing server span; behaviors propagate it
  /// into downstream calls so multi-hop call trees stay connected.
  trace::SpanContext trace{};
};

/// Server-side application logic of a deployment. `invoke` is asynchronous:
/// implementations schedule whatever execution delays / downstream calls
/// they need and fire `done` exactly once.
class ServiceBehavior {
 public:
  virtual ~ServiceBehavior() = default;
  virtual void invoke(const BehaviorContext& ctx, OutcomeFn done) = 0;
};

/// Behavior whose handling time is a fixed-parameter log-normal draw —
/// handy for examples and tests.
class FixedLatencyBehavior final : public ServiceBehavior {
 public:
  /// @param median   median handling time (seconds)
  /// @param p99      99th-percentile handling time (seconds, > median)
  /// @param success  probability a request succeeds
  FixedLatencyBehavior(SimDuration median, SimDuration p99,
                       double success = 1.0);

  void invoke(const BehaviorContext& ctx, OutcomeFn done) override;

 private:
  double mu_;
  double sigma_;
  double success_;
};

/// Configuration of one deployment.
struct DeploymentConfig {
  std::size_t replicas = 3;          ///< paper §5.1: three replicas/cluster
  std::size_t concurrency = 100;     ///< slots per replica
  std::size_t queue_capacity = 512;  ///< waiting requests per replica
};

/// N replicas of a service in one cluster.
class ServiceDeployment {
 public:
  ServiceDeployment(std::string service, ClusterId cluster,
                    DeploymentConfig config,
                    std::unique_ptr<ServiceBehavior> behavior,
                    sim::Simulator& sim, Mesh& mesh, SplitRng rng);

  ServiceDeployment(const ServiceDeployment&) = delete;
  ServiceDeployment& operator=(const ServiceDeployment&) = delete;

  /// Handles one request: picks the least-loaded replica, runs the behavior
  /// and reports the Outcome (a queue-overflow rejection reports
  /// `success=false, rejected=true` immediately).
  void handle(int depth, OutcomeFn done) {
    handle(depth, trace::SpanContext{}, std::move(done));
  }

  /// As above, recording queue/service child spans under `parent` when it
  /// is sampled and a tracer is attached.
  void handle(int depth, trace::SpanContext parent, OutcomeFn done);

  /// Attaches (or detaches, nullptr) the tracer spans are recorded into.
  /// Normally called through Mesh::set_tracer.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  const std::string& service() const { return service_; }
  ClusterId cluster() const { return cluster_; }

  /// The simulator this deployment executes on — in a sharded run, the
  /// OWNING shard's simulator (cross-shard callers must post work through
  /// the shard router rather than schedule here directly).
  sim::Simulator& sim() { return sim_; }
  /// The owning shard's mesh view.
  Mesh& mesh() { return mesh_; }

  /// Marks the whole deployment down/up (outage injection). While down,
  /// requests are rejected immediately.
  void set_down(bool down) { down_ = down; }
  bool is_down() const { return down_; }

  /// Total load across replicas (active + queued).
  std::size_t load() const;

  /// Aggregate lifetime counters.
  std::uint64_t completed() const;
  std::uint64_t rejected() const { return rejected_; }

  std::size_t replica_count() const { return replicas_.size(); }
  const Replica& replica(std::size_t i) const { return *replicas_[i]; }

  /// Crashes replica `i` (fault injection): its queued requests and its
  /// in-flight requests all fail immediately through the normal completion
  /// path — every caller's `done` fires exactly once with a failure, every
  /// held concurrency slot is released exactly once, and the behavior's
  /// late done-callback for an in-flight request is absorbed when it
  /// eventually fires. The replica receives no further traffic until
  /// restart_replica(). No-op when already crashed.
  void crash_replica(std::size_t i);

  /// Brings a crashed replica back into service. No-op when not crashed.
  void restart_replica(std::size_t i);

  /// Replicas currently in service (not crashed).
  std::size_t alive_replicas() const;

  /// Lifetime count of requests failed by replica crashes (in-flight plus
  /// queued at the moment of the crash).
  std::uint64_t crash_failed() const { return crash_failed_; }

  /// Pooled server-side call states currently pending (tests).
  std::size_t live_calls() const { return calls_.live(); }

  /// Adds one replica with the deployment's configured concurrency/queue
  /// (autoscaling support, §3.2).
  void add_replica();

  /// Removes one idle replica (load == 0). Returns false when only one
  /// replica remains or none is idle — draining is not modelled, so a busy
  /// replica is never torn down.
  bool remove_idle_replica();

  /// Combined concurrency across replicas (capacity proxy for scaling).
  std::size_t total_concurrency() const;

  ServiceBehavior& behavior() { return *behavior_; }

 private:
  /// Pooled per-request server-side state: the completion callback, trace
  /// context and the replica slot's release token. The replica job and the
  /// behavior-done continuation each capture only {this, handle}, so both
  /// stay inline in their SmallFn wrappers; the rejection path reads `done`
  /// straight out of the pool (no defensive copy).
  struct PendingCall {
    OutcomeFn done;
    trace::SpanContext server{};
    SimTime enqueued = 0.0;
    int depth = 0;
    std::uint32_t replica = 0;  ///< index of the replica handling the call
    ReleaseToken release;
  };
  using CallHandle = common::SlotPool<PendingCall>::Handle;

  /// Runs the behavior for a call whose replica slot was just granted.
  void run_call(CallHandle handle, ReleaseToken release);
  /// Fires the behavior-done tail: release the slot, close the span,
  /// recycle the pool entry and complete the caller.
  void complete_call(CallHandle handle, const Outcome& outcome);

  std::string service_;
  ClusterId cluster_;
  std::string cluster_name_;  ///< span label, resolved at construction
  std::string server_span_name_;  ///< interned "server:<service>"
  DeploymentConfig config_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<ServiceBehavior> behavior_;
  sim::Simulator& sim_;
  Mesh& mesh_;
  SplitRng rng_;
  trace::Tracer* tracer_ = nullptr;
  bool down_ = false;
  std::uint64_t rejected_ = 0;
  std::uint64_t crash_failed_ = 0;
  /// In-flight calls failed by crash_replica whose behavior continuation
  /// has not fired yet; complete_call absorbs exactly this many stale
  /// handles before treating one as a double-fired done callback.
  std::uint64_t crash_zombies_ = 0;
  std::size_t crashed_count_ = 0;  ///< maintained by crash/restart_replica
  std::size_t rr_cursor_ = 0;  // tie-break rotation among equally loaded
  common::SlotPool<PendingCall> calls_;
};

}  // namespace mesh
}  // namespace l3
