// Periodic health checking, the orchestrator-level mechanism §3.1 defers to
// for replicas that become unable to serve traffic at all: the checker
// probes each watched deployment on an interval and maintains the (possibly
// stale) availability view that proxies consult when picking backends.
// Detection latency — an outage is only noticed at the next probe — is the
// realistic failover lag L3 improves on (§6 "Optimizing for availability").
#pragma once

#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/sim/simulator.h"

#include <map>

namespace l3::mesh {

/// Probes deployments periodically and exposes the last observed state.
class HealthChecker {
 public:
  explicit HealthChecker(sim::Simulator& sim) : sim_(sim) {}
  ~HealthChecker() { stop(); }
  HealthChecker(const HealthChecker&) = delete;
  HealthChecker& operator=(const HealthChecker&) = delete;

  /// Starts watching a deployment (initially assumed healthy).
  void watch(const ServiceDeployment& deployment);

  /// Starts periodic probing.
  void start(SimDuration interval = 10.0);

  void stop() { task_.cancel(); }

  /// Probes every watched deployment immediately.
  void probe_once();

  /// The checker's current (possibly stale) view of a deployment.
  /// Unwatched deployments are reported healthy.
  bool is_available(const ServiceDeployment& deployment) const;

  /// Monotone counter bumped whenever the view may have changed (a probe
  /// observed a different state, or a new deployment was watched). Proxies
  /// cache their availability mask against it instead of consulting the
  /// view map per request.
  std::uint64_t version() const { return version_; }

 private:
  sim::Simulator& sim_;
  std::map<const ServiceDeployment*, bool> view_;
  sim::PeriodicHandle task_;
  std::uint64_t version_ = 0;
};

}  // namespace l3::mesh
