// Canonical metric names and label schema exported by proxies — the wire
// contract between the data plane (mesh::Proxy) and the control plane
// (core::L3Controller), mirroring Linkerd's proxy metrics (§4).
//
// Every per-backend series carries the labels
//   split = <service name of the TrafficSplit>
//   src   = <source cluster name>
//   dst   = <backend cluster name>
#pragma once

#include "l3/metrics/registry.h"

#include <string>

namespace l3::mesh::metric_names {

/// Counter: requests sent towards a backend.
inline constexpr const char* kRequestTotal = "request_total";
/// Counter: successful responses received from a backend.
inline constexpr const char* kSuccessTotal = "response_success_total";
/// Counter: failed responses (HTTP 5xx equivalent, rejections, timeouts).
inline constexpr const char* kFailureTotal = "response_failure_total";
/// Histogram: latency of successful responses (seconds). L3 deliberately
/// keeps success and failure latency apart (§3.1).
inline constexpr const char* kLatencySuccess = "response_latency_success";
/// Histogram: latency of failed responses (seconds).
inline constexpr const char* kLatencyFailure = "response_latency_failure";
/// Counter: sum of successful-response latencies (Prometheus `_sum`), so
/// mean latency = rate(sum) / rate(success) — the signal mean-based
/// policies like C3 rank on.
inline constexpr const char* kLatencySuccessSum =
    "response_latency_success_sum";
/// Counter: sum of failed-response latencies (dynamic-penalty input, §7).
inline constexpr const char* kLatencyFailureSum =
    "response_latency_failure_sum";
/// Gauge: requests currently in flight towards a backend.
inline constexpr const char* kInflight = "inflight_requests";

// Audit families of the data-plane cost model (DESIGN.md §16). Deliberately
// low-cardinality: one series per proxy ({split, src} only — no dst label),
// registered only when the cost model is enabled. Per-edge and per-request
// detail stays in the bounded l3::obs RT rings.
/// Counter: connections opened on any edge (mTLS handshakes paid).
inline constexpr const char* kHandshakeTotal = "proxy_handshake_total";
/// Counter: checkouts served by a warm pooled connection.
inline constexpr const char* kPoolHitTotal = "proxy_pool_hit_total";
/// Counter: connections closed (client timeout churn + pool overflow).
inline constexpr const char* kConnCloseTotal = "proxy_conn_close_total";

/// Label set for one proxy's audit families (no dst — per-proxy, not
/// per-edge).
inline metrics::Labels proxy_labels(const std::string& service,
                                    const std::string& src_cluster) {
  return metrics::Labels{{"split", service}, {"src", src_cluster}};
}

/// Label set for one backend of one TrafficSplit.
inline metrics::Labels backend_labels(const std::string& service,
                                      const std::string& src_cluster,
                                      const std::string& dst_cluster) {
  return metrics::Labels{
      {"split", service}, {"src", src_cluster}, {"dst", dst_cluster}};
}

/// Full TSDB series key for a backend metric.
inline std::string backend_series(const char* metric,
                                  const std::string& service,
                                  const std::string& src_cluster,
                                  const std::string& dst_cluster) {
  return metrics::series_key(metric,
                             backend_labels(service, src_cluster, dst_cluster));
}

}  // namespace l3::mesh::metric_names
