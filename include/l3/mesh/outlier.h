// Outlier detection with circuit breaking — the failover mechanism §5.1 of
// the paper recommends for topologies with large inter-cluster delays
// ("a circuit-breaker-based failover mechanism triggered by outlier
// detection could be more suitable"), as implemented by Envoy/Istio: each
// proxy tracks per-backend failure ratios over a rolling window and ejects
// a backend from its rotation for a fixed duration when the ratio crosses a
// threshold, bounded so the proxy never ejects everything.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"

#include <cstdint>
#include <vector>

namespace l3::mesh {

/// Outlier-detection parameters (Envoy-style defaults).
struct OutlierDetectionConfig {
  bool enabled = false;
  /// Failure ratio within a window that triggers ejection.
  double failure_threshold = 0.5;
  /// Minimum requests in the window before a verdict is possible.
  std::uint32_t min_requests = 10;
  /// Rolling window length.
  SimDuration window = 10.0;
  /// How long an ejected backend stays out of rotation.
  SimDuration ejection_duration = 30.0;
  /// Upper bound on the fraction of backends ejected simultaneously.
  double max_ejected_fraction = 0.67;
};

/// Per-proxy outlier tracker over a fixed backend set.
class OutlierDetector {
 public:
  OutlierDetector(std::size_t backend_count, OutlierDetectionConfig config);

  /// Records one response outcome for a backend.
  void record(std::size_t backend, bool success, SimTime now);

  /// Whether the backend is currently ejected.
  bool is_ejected(std::size_t backend, SimTime now) const;

  /// Number of backends currently ejected.
  std::size_t ejected_count(SimTime now) const;

  /// Lifetime ejection count (observability/tests).
  std::uint64_t ejections() const { return ejections_; }

  /// Monotone counter bumped on every new ejection. Together with
  /// next_transition() it lets proxies cache their availability mask:
  /// ejection *starts* bump the version, ejection *expiries* are pure
  /// functions of time and are covered by the transition bound.
  std::uint64_t version() const { return version_; }

  /// The earliest future time at which a currently-ejected backend returns
  /// to rotation (+infinity when none is ejected) — the cached availability
  /// mask stays exact until then, barring a version() bump.
  SimTime next_transition(SimTime now) const;

  const OutlierDetectionConfig& config() const { return config_; }

 private:
  struct BackendState {
    SimTime window_start = 0.0;
    std::uint32_t successes = 0;
    std::uint32_t failures = 0;
    SimTime ejected_until = -1.0;
  };

  void roll_window(BackendState& state, SimTime now) const;
  void maybe_eject(std::size_t backend, SimTime now);

  OutlierDetectionConfig config_;
  std::vector<BackendState> backends_;
  std::uint64_t ejections_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace l3::mesh
