// A single replica (pod) of a service: a bounded pool of concurrency slots
// fronted by a FIFO queue. A request occupies a slot for its whole residence
// (execution plus any downstream waits), so sustained load beyond capacity
// builds queueing delay — this is what produces the saturation knee the
// paper observes near 1000 RPS (§5.3.1) and gives the rate controller
// (Algorithm 2) an overload to protect against.
#pragma once

#include "l3/common/assert.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>

namespace l3::mesh {

/// Work submitted to a replica. The job receives a `release` callback and
/// MUST invoke it exactly once when the request has finished (successfully
/// or not) so the slot is returned.
using ReplicaJob = std::function<void(std::function<void()> release)>;

/// One service replica with `concurrency` slots and a FIFO queue of at most
/// `queue_capacity` waiting requests.
class Replica {
 public:
  Replica(std::size_t concurrency, std::size_t queue_capacity)
      : concurrency_(concurrency), queue_capacity_(queue_capacity) {
    L3_EXPECTS(concurrency >= 1);
  }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Submits a job. Runs it immediately if a slot is free, queues it if the
  /// queue has room, otherwise rejects (returns false; job not run).
  bool submit(ReplicaJob job);

  /// Requests currently holding a slot.
  std::size_t active() const { return active_; }

  /// Requests waiting in the queue.
  std::size_t queued() const { return queue_.size(); }

  /// Total load (active + queued) — the replica-selection signal.
  std::size_t load() const { return active_ + queue_.size(); }

  std::size_t concurrency() const { return concurrency_; }

  /// Lifetime counters for observability and tests.
  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  void run(ReplicaJob job);

  std::size_t concurrency_;
  std::size_t queue_capacity_;
  std::size_t active_ = 0;
  std::deque<ReplicaJob> queue_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace l3::mesh
