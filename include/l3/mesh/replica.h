// A single replica (pod) of a service: a bounded pool of concurrency slots
// fronted by a FIFO queue. A request occupies a slot for its whole residence
// (execution plus any downstream waits), so sustained load beyond capacity
// builds queueing delay — this is what produces the saturation knee the
// paper observes near 1000 RPS (§5.3.1) and gives the rate controller
// (Algorithm 2) an overload to protect against.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/function.h"

#include <cstddef>
#include <cstdint>
#include <deque>
#include <utility>

namespace l3::mesh {

class Replica;

/// Move-only proof that one concurrency slot is held. The job (or whatever
/// continuation it hands the token to) MUST invoke it exactly once when the
/// request has finished, successfully or not, so the slot is returned and
/// the queue pumps. Exactly-once is structural: the token cannot be copied,
/// invoking consumes it, and a second invocation of the same (now empty)
/// token trips the precondition — all without the shared heap flag the
/// std::function-based release callback needed.
class ReleaseToken {
 public:
  ReleaseToken() noexcept = default;

  ReleaseToken(ReleaseToken&& other) noexcept
      : replica_(std::exchange(other.replica_, nullptr)) {}
  ReleaseToken& operator=(ReleaseToken&& other) noexcept {
    L3_EXPECTS(replica_ == nullptr);  // overwriting would leak a slot
    replica_ = std::exchange(other.replica_, nullptr);
    return *this;
  }
  ReleaseToken(const ReleaseToken&) = delete;
  ReleaseToken& operator=(const ReleaseToken&) = delete;

  /// Releases the slot (and pumps the replica's queue). Consumes the token.
  void operator()();

  /// Whether the token still holds a slot.
  explicit operator bool() const noexcept { return replica_ != nullptr; }

 private:
  friend class Replica;
  explicit ReleaseToken(Replica* replica) noexcept : replica_(replica) {}

  Replica* replica_ = nullptr;
};

/// Work submitted to a replica. The job receives the slot's ReleaseToken
/// and must arrange for it to fire exactly once. Capacity fits the hot
/// submit closure ({deployment, pool handle}) inline.
using ReplicaJob = common::SmallFn<void(ReleaseToken), 24>;

/// One service replica with `concurrency` slots and a FIFO queue of at most
/// `queue_capacity` waiting requests.
class Replica {
 public:
  Replica(std::size_t concurrency, std::size_t queue_capacity)
      : concurrency_(concurrency), queue_capacity_(queue_capacity) {
    L3_EXPECTS(concurrency >= 1);
  }

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Submits a job. Runs it immediately if a slot is free, queues it if the
  /// queue has room, otherwise rejects (returns false; job not run).
  bool submit(ReplicaJob job);

  /// Requests currently holding a slot.
  std::size_t active() const { return active_; }

  /// Requests waiting in the queue.
  std::size_t queued() const { return queue_.size(); }

  /// Total load (active + queued) — the replica-selection signal.
  std::size_t load() const { return active_ + queue_.size(); }

  std::size_t concurrency() const { return concurrency_; }

  /// Crashes the replica (fault injection): queued jobs are destroyed
  /// unrun, further submissions are rejected, and the queue stays unpumped
  /// until restart(). Slots held by in-flight jobs remain counted until
  /// their ReleaseTokens fire — the owner (ServiceDeployment) is
  /// responsible for failing those calls and firing their tokens exactly
  /// once. Returns the number of queued jobs discarded.
  std::size_t crash();

  /// Brings a crashed replica back into service with empty state.
  void restart() { crashed_ = false; }

  bool crashed() const { return crashed_; }

  /// Lifetime counters for observability and tests.
  std::uint64_t completed() const { return completed_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  friend class ReleaseToken;

  void run(ReplicaJob job);

  /// ReleaseToken's target: frees one slot and pumps the queue.
  void release_one();

  std::size_t concurrency_;
  std::size_t queue_capacity_;
  std::size_t active_ = 0;
  std::deque<ReplicaJob> queue_;
  std::uint64_t completed_ = 0;
  std::uint64_t rejected_ = 0;
  bool crashed_ = false;
};

inline void ReleaseToken::operator()() {
  L3_EXPECTS(replica_ != nullptr);  // double release / empty token
  std::exchange(replica_, nullptr)->release_one();
}

}  // namespace l3::mesh
