// The data-plane cost model of the sidecar proxy (DESIGN.md §16). The
// mesh-framework mTLS technical report (PAPERS.md) shows that at production
// traffic the proxy tier itself is a first-order cost: every request burns
// sidecar CPU, and every new connection pays an mTLS handshake. This module
// models both so the *proxy*, not just the backends, can become the
// bottleneck — the regime where capacity-aware weighting earns its keep:
//
//  * ProxyCpuStage — a bounded-concurrency service stage in front of the
//    WAN leg: each admitted request occupies one of `concurrency` workers
//    for its service time (cpu_per_request + any handshake), FIFO in send
//    order. When offered load exceeds capacity the stage queues, and the
//    queueing delay lands in the request latency the client (and therefore
//    the EWMA/L3 signal path) observes.
//  * EdgeConnectionPool — one per (source proxy, backend) edge. A checkout
//    reuses the most-recently-released idle connection when one is live;
//    otherwise it opens a new connection and pays `handshake_cost` in the
//    CPU stage. On release a connection returns to the idle list unless the
//    call timed out (the client closed mid-flight — churn) or the idle list
//    already holds `pool_size` connections. Idle connections expire after
//    `idle_timeout`, so traffic shifting away from an edge and back — the
//    bursty-reweighting pattern — drains the warm pool and triggers a
//    handshake storm on return.
//
// Determinism contract: the model draws no RNG and schedules no events of
// its own — the computed delay is folded into the outbound-leg delay the
// proxy already schedules. With the zero-cost defaults (`enabled()` false)
// the proxy skips the model entirely and behaviour is byte-identical to a
// build without it (enforced by check.sh against the fig goldens).
#pragma once

#include "l3/common/time.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace l3::mesh {

/// Knobs of the proxy-tier cost model. The defaults are zero-cost: no CPU
/// burn, no handshakes, no state — byte-identical to a proxy without the
/// model.
struct ProxyCostConfig {
  /// Sidecar CPU time burned per request (seconds). 0 disables the model
  /// together with handshake_cost.
  SimDuration cpu_per_request = 0.0;
  /// Extra CPU time for establishing a new (mTLS) connection on an edge.
  SimDuration handshake_cost = 0.0;
  /// Proxy worker threads: requests admitted concurrently into the CPU
  /// stage; beyond this the stage queues (FIFO).
  std::size_t concurrency = 2;
  /// Idle connections retained per (source, backend) edge; a release beyond
  /// this closes the connection instead of parking it.
  std::size_t pool_size = 4;
  /// Idle connections older than this expire and are pruned at the next
  /// checkout on that edge.
  SimDuration idle_timeout = 300.0;

  /// The model runs only when it can change an outcome.
  bool enabled() const { return cpu_per_request > 0.0 || handshake_cost > 0.0; }
};

/// Aggregate cost-model accounting for one proxy (all edges). Sim-time
/// deterministic; exposed for tests, the proxy_cost bench section and the
/// obs audit export.
struct ProxyCostStats {
  std::uint64_t handshakes = 0;     ///< connections opened (mTLS paid)
  std::uint64_t pool_hits = 0;      ///< checkouts served by a warm connection
  std::uint64_t expired = 0;        ///< idle connections pruned by timeout
  std::uint64_t closed = 0;         ///< closes: timeouts + pool overflow
  std::uint64_t queued = 0;         ///< admissions that waited for a worker
  SimDuration cpu_busy_total = 0.0; ///< total service time through the stage
  SimDuration queue_delay_total = 0.0;  ///< total admission wait
  SimDuration queue_delay_max = 0.0;    ///< worst single admission wait

  /// Fraction of checkouts served without a handshake (1.0 when idle).
  double pool_hit_rate() const {
    const std::uint64_t total = handshakes + pool_hits;
    return total == 0 ? 1.0
                      : static_cast<double>(pool_hits) /
                            static_cast<double>(total);
  }
};

/// Bounded-concurrency FIFO service stage: admit() assigns the request to
/// the earliest-free worker and returns when service *completes*. Pure
/// arithmetic on worker free-times — no events, no RNG.
class ProxyCpuStage {
 public:
  /// Sizes the worker set; free times start at 0 (all idle).
  void configure(std::size_t concurrency) {
    free_at_.assign(std::max<std::size_t>(concurrency, 1), 0.0);
  }

  /// Admits one request of `service` seconds at `now`; returns its
  /// completion time (>= now + service; the excess is queueing delay).
  SimTime admit(SimTime now, SimDuration service) {
    auto it = std::min_element(free_at_.begin(), free_at_.end());
    const SimTime start = std::max(now, *it);
    *it = start + service;
    return *it;
  }

  /// Workers still busy at `now` (observability for tests).
  std::size_t busy(SimTime now) const {
    std::size_t n = 0;
    for (const SimTime t : free_at_) n += (t > now) ? 1 : 0;
    return n;
  }

 private:
  std::vector<SimTime> free_at_;  ///< per-worker earliest next admission
};

/// Connection pool for one (source proxy, backend) edge. Tracks only the
/// *idle* connections (each with its expiry time, in release order, so the
/// list stays sorted ascending); busy connections need no state because a
/// checkout carries everything release() needs.
class EdgeConnectionPool {
 public:
  struct Checkout {
    bool handshake = false;       ///< a new connection was opened
    std::uint32_t expired = 0;    ///< idle connections pruned this checkout
  };

  /// Leases a connection: reuses the most-recently-released live idle
  /// connection, else opens a new one (handshake).
  Checkout checkout(SimTime now) {
    Checkout result;
    result.expired = prune(now);
    if (!idle_until_.empty()) {
      idle_until_.pop_back();  // MRU: warmest connection, longest to live
    } else {
      result.handshake = true;
    }
    return result;
  }

  /// Returns a leased connection. `close` (client timeout — the connection
  /// is torn down mid-flight) or an idle list already at `pool_size` closes
  /// it; otherwise it parks until now + idle_timeout.
  /// Returns true when the connection was closed (churn accounting).
  bool release(SimTime now, bool close, const ProxyCostConfig& config) {
    if (close || idle_until_.size() >= config.pool_size) return true;
    idle_until_.push_back(now + config.idle_timeout);
    return false;
  }

  std::size_t idle() const { return idle_until_.size(); }

 private:
  /// Drops idle connections whose expiry passed. Entries are appended in
  /// release order with a constant idle_timeout, so the list is sorted
  /// ascending and expiry is a prefix.
  std::uint32_t prune(SimTime now) {
    std::size_t n = 0;
    while (n < idle_until_.size() && idle_until_[n] <= now) ++n;
    if (n > 0) idle_until_.erase(idle_until_.begin(),
                                 idle_until_.begin() + static_cast<std::ptrdiff_t>(n));
    return static_cast<std::uint32_t>(n);
  }

  std::vector<SimTime> idle_until_;  ///< idle connections' expiry, ascending
};

}  // namespace l3::mesh
