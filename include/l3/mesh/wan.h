// Wide-area network model between clusters. Captures the three latency
// phenomena §1 of the paper names: (1) WAN links with time-varying latency,
// (2) routing-path changes every couple of seconds ("route flaps") and
// (3) transient disturbances (delay spikes) that can be injected per link.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/rng.h"
#include "l3/common/time.h"
#include "l3/mesh/types.h"

#include <cstdint>
#include <vector>

namespace l3::mesh {

/// One-way network delay model over a fully connected cluster graph.
class WanModel {
 public:
  /// Per-link static configuration.
  struct Link {
    SimDuration base = 0.0;        ///< one-way propagation delay (seconds)
    double jitter_frac = 0.10;     ///< relative half-normal jitter amplitude
    SimDuration flap_amp = 0.0;    ///< route-flap amplitude (extra delay)
    SimDuration flap_period = 4.0; ///< route re-convergence period (§1:
                                   ///< "every couple of seconds")
  };

  /// A transient injected delay window on one directed link.
  struct Disturbance {
    ClusterId from = 0;
    ClusterId to = 0;
    SimTime start = 0.0;
    SimTime end = 0.0;
    SimDuration extra = 0.0;
  };

  /// A bidirectional connectivity loss between a pair of clusters for a
  /// time window (fault injection): while active, nothing sent either way
  /// between `a` and `b` arrives. Use +inf for `end` to partition until the
  /// end of the run.
  struct Partition {
    ClusterId a = 0;
    ClusterId b = 0;
    SimTime start = 0.0;
    SimTime end = 0.0;
  };

  WanModel() = default;

  /// Resizes the delay matrix for `n` clusters. Existing entries persist.
  void resize(std::size_t n);

  /// Sets the directed link from→to (topology setup only; forbidden after
  /// freeze()). Records `link.base` as the link's registered delay floor.
  void set_link(ClusterId from, ClusterId to, Link link);

  /// Mid-run delay mutation (chaos brownouts, adaptive reconfiguration):
  /// replaces the link parameters but asserts the new base never drops
  /// below the registered floor — the sharded runner derives conservative
  /// lookahead from floors, and a delay observed below the floor would
  /// break the barrier's safety argument. Bumps version().
  void update_link(ClusterId from, ClusterId to, Link link);

  /// Sets both directions from↔to.
  void set_symmetric(ClusterId a, ClusterId b, Link link) {
    set_link(a, b, link);
    set_link(b, a, link);
  }

  /// Convenience: same intra-cluster delay on every diagonal entry.
  void set_local_delay(SimDuration base, double jitter_frac = 0.10);

  const Link& link(ClusterId from, ClusterId to) const;

  /// Adds a transient extra-delay window on a directed link.
  void add_disturbance(Disturbance d);

  /// Registers a partition window. Windows must be registered before the
  /// simulation reaches `start` (proxies cache availability against
  /// next_partition_transition()); the fault injector registers a whole
  /// FaultPlan's partitions up front.
  void add_partition(Partition p);

  /// Whether traffic from→to is severed at `now`.
  bool is_partitioned(ClusterId from, ClusterId to, SimTime now) const;

  /// The earliest future time any partition starts or ends (+inf when
  /// none) — the horizon until which a partition-aware availability cache
  /// stays exact.
  SimTime next_partition_transition(SimTime now) const;

  /// Fast guard for the request hot path: false ⇒ no partition checks at
  /// all are needed.
  bool has_partitions() const { return !partitions_.empty(); }

  /// Samples the one-way delay from→to at time `now`.
  SimDuration sample(ClusterId from, ClusterId to, SimTime now,
                     SplitRng& rng) const;

  std::size_t cluster_count() const { return n_; }

  /// Registered delay floor for from→to: the base recorded at set_link()
  /// time, +inf for links never registered. Every sample() on a registered
  /// link returns >= this floor (jitter, flaps and disturbances only add),
  /// and update_link() cannot lower it — so a lookahead table built from
  /// floors stays conservative across all mid-run mutation.
  SimDuration min_base(ClusterId from, ClusterId to) const {
    L3_EXPECTS(from < n_ && to < n_);
    return floors_[from * n_ + to];
  }

  /// Forbids further set_link()/set_symmetric() calls: topology (and with
  /// it the floor table) is final. update_link()/add_disturbance()/
  /// add_partition() remain allowed — they can only add delay.
  void freeze() { frozen_ = true; }
  bool frozen() const { return frozen_; }

  /// Monotonic mutation counter, bumped by update_link(),
  /// add_disturbance() and add_partition(). Lets cached views (proxy
  /// availability, shard lookahead audits) detect mid-run WAN changes.
  std::uint64_t version() const { return version_; }

 private:
  /// Deterministic route-flap offset: a value in [0, 1] that re-rolls every
  /// flap_period, keyed on (link, epoch) — stateless and reproducible.
  static double flap_unit(ClusterId from, ClusterId to, std::uint64_t epoch);

  std::size_t n_ = 0;
  std::vector<Link> links_;        // row-major n_ x n_
  std::vector<SimDuration> floors_;  // registered base per link; +inf unset
  std::vector<Disturbance> disturbances_;
  std::vector<Partition> partitions_;
  std::uint64_t version_ = 0;
  bool frozen_ = false;
};

}  // namespace l3::mesh
