// The client-side sidecar proxy for one (source cluster, target service)
// pair. It owns the request hot path: backend selection, WAN transit both
// ways, client-side timeout, and the per-backend Prometheus metrics
// (counters, success/failure latency histograms, in-flight gauge) that are
// the only signal L3 ever sees.
//
// Two routing modes are supported:
//  * kWeighted (default) — weighted sampling per the TrafficSplit, the SMI
//    mechanism the paper's L3 drives;
//  * kPeakEwmaP2C — Linkerd's in-proxy balancer (§6 "Beyond Round Robin"):
//    power-of-two-choices over a client-side PeakEWMA latency score
//    weighted by outstanding requests, deciding per request with no
//    control-plane loop. Provided for the per-request-vs-TrafficSplit
//    comparison bench.
//
// Optional Envoy-style outlier detection (§5.1) ejects failing backends
// from the rotation for a fixed duration.
#pragma once

#include "l3/common/rng.h"
#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/health.h"
#include "l3/mesh/outlier.h"
#include "l3/mesh/traffic_split.h"
#include "l3/mesh/types.h"
#include "l3/mesh/wan.h"
#include "l3/metrics/ewma.h"
#include "l3/metrics/registry.h"
#include "l3/sim/simulator.h"

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3::mesh {

/// How the proxy picks a backend for each request.
enum class RoutingMode {
  kWeighted,     ///< TrafficSplit weights (SMI semantics)
  kPeakEwmaP2C,  ///< per-request power-of-two-choices on PeakEWMA latency
};

/// Proxy configuration.
struct ProxyConfig {
  /// Client-side request timeout; 0 disables. A timed-out request is
  /// recorded as a failure with latency == timeout (the client's view).
  SimDuration timeout = 30.0;
  RoutingMode routing = RoutingMode::kWeighted;
  /// Initial value / half-life of the per-backend client-side PeakEWMA
  /// used by kPeakEwmaP2C.
  SimDuration p2c_default_latency = 0.005;
  SimDuration p2c_half_life = 5.0;
  OutlierDetectionConfig outlier;
};

/// Sidecar proxy: routes calls from one cluster to one service's backends.
class Proxy {
 public:
  /// All referenced objects must outlive the proxy; `deployments` must be
  /// aligned index-for-index with `split.backends()`.
  Proxy(sim::Simulator& sim, const WanModel& wan, ClusterId source,
        TrafficSplit& split, std::vector<ServiceDeployment*> deployments,
        metrics::Registry& registry, const HealthChecker* health,
        SplitRng rng, ProxyConfig config,
        const std::vector<std::string>& cluster_names);

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Sends one request through the mesh; `done` fires exactly once with the
  /// response (success, failure or timeout).
  void send(int depth, ResponseFn done) {
    send(depth, trace::SpanContext{}, std::move(done));
  }

  /// As above, recording a proxy span (with WAN-transit and server child
  /// spans) under `parent` when it is sampled and a tracer is attached.
  void send(int depth, trace::SpanContext parent, ResponseFn done);

  /// Attaches (or detaches, nullptr) the tracer spans are recorded into.
  /// Normally called through Mesh::set_tracer.
  void set_tracer(trace::Tracer* tracer) { tracer_ = tracer; }

  const TrafficSplit& split() const { return split_; }
  ClusterId source() const { return source_; }

  /// Requests currently in flight through this proxy (all backends).
  std::uint64_t inflight() const { return inflight_total_; }

  /// Lifetime request count (for tests/examples).
  std::uint64_t sent() const { return sent_; }

  /// Outlier-detection state (for tests/observability).
  const OutlierDetector& outlier_detector() const { return outlier_; }

  RoutingMode routing_mode() const { return config_.routing; }

 private:
  struct BackendSlot {
    ServiceDeployment* deployment;
    std::string dst_name;  ///< backend cluster name (span label)
    metrics::Counter* requests;
    metrics::Counter* success;
    metrics::Counter* failure;
    metrics::HistogramSeries* latency_success;
    metrics::HistogramSeries* latency_failure;
    metrics::Counter* latency_success_sum;
    metrics::Counter* latency_failure_sum;
    metrics::Gauge* inflight;
    /// Client-side latency filter + outstanding count for kPeakEwmaP2C.
    std::unique_ptr<metrics::PeakEwma> p2c_latency;
    std::uint32_t outstanding = 0;
  };

  struct CallState;

  /// Picks a backend according to the routing mode, skipping unhealthy and
  /// ejected backends when possible.
  std::size_t pick();
  std::size_t pick_weighted(const std::vector<bool>& available);
  std::size_t pick_p2c(const std::vector<bool>& available);

  /// Availability mask (health view ∧ not ejected); all-true fallback when
  /// nothing is available.
  std::vector<bool> availability() const;

  /// P2C cost: PeakEWMA latency × (outstanding + 1) — Linkerd's score.
  double p2c_cost(const BackendSlot& slot) const;

  void on_response(const std::shared_ptr<CallState>& state,
                   const Outcome& outcome);
  void on_timeout(const std::shared_ptr<CallState>& state);
  void finish(const std::shared_ptr<CallState>& state, bool success,
              SimDuration latency, bool timed_out);

  sim::Simulator& sim_;
  const WanModel& wan_;
  ClusterId source_;
  std::string src_name_;  ///< source cluster name (span label)
  trace::Tracer* tracer_ = nullptr;
  TrafficSplit& split_;
  std::vector<BackendSlot> backends_;
  const HealthChecker* health_;
  SplitRng rng_;
  ProxyConfig config_;
  OutlierDetector outlier_;
  std::uint64_t inflight_total_ = 0;
  std::uint64_t sent_ = 0;
};

}  // namespace l3::mesh
