// The client-side sidecar proxy for one (source cluster, target service)
// pair. It owns the request hot path: backend selection, WAN transit both
// ways, client-side timeout, and the per-backend Prometheus metrics
// (counters, success/failure latency histograms, in-flight gauge) that are
// the only signal L3 ever sees.
//
// Two routing modes are supported:
//  * kWeighted (default) — weighted sampling per the TrafficSplit, the SMI
//    mechanism the paper's L3 drives;
//  * kPeakEwmaP2C — Linkerd's in-proxy balancer (§6 "Beyond Round Robin"):
//    power-of-two-choices over a client-side PeakEWMA latency score
//    weighted by outstanding requests, deciding per request with no
//    control-plane loop. Provided for the per-request-vs-TrafficSplit
//    comparison bench.
//
// Optional Envoy-style outlier detection (§5.1) ejects failing backends
// from the rotation for a fixed duration.
#pragma once

#include "l3/common/rng.h"
#include "l3/common/slot_pool.h"
#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/mesh/health.h"
#include "l3/mesh/outlier.h"
#include "l3/mesh/pick_kernels.h"
#include "l3/mesh/proxy_cost.h"
#include "l3/mesh/traffic_split.h"
#include "l3/mesh/types.h"
#include "l3/mesh/wan.h"
#include "l3/metrics/ewma.h"
#include "l3/metrics/registry.h"
#include "l3/sim/simulator.h"

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace l3::sim {
class ShardRouter;  // cross-shard event posting (l3/sim/shard_engine.h)
}  // namespace l3::sim

namespace l3::mesh {

/// How the proxy picks a backend for each request.
enum class RoutingMode {
  kWeighted,     ///< TrafficSplit weights (SMI semantics)
  kPeakEwmaP2C,  ///< per-request power-of-two-choices on PeakEWMA latency
};

/// Proxy configuration.
struct ProxyConfig {
  /// Client-side request timeout; 0 disables. A timed-out request is
  /// recorded as a failure with latency == timeout (the client's view).
  SimDuration timeout = 30.0;
  RoutingMode routing = RoutingMode::kWeighted;
  /// Initial value / half-life of the per-backend client-side PeakEWMA
  /// used by kPeakEwmaP2C.
  SimDuration p2c_default_latency = 0.005;
  SimDuration p2c_half_life = 5.0;
  OutlierDetectionConfig outlier;
  /// Data-plane cost model (DESIGN.md §16): per-request sidecar CPU, the
  /// bounded-concurrency proxy service stage and the per-edge connection
  /// pool with mTLS handshake costs. The zero-cost defaults disable the
  /// model entirely (byte-identical behaviour).
  ProxyCostConfig cost;
};

/// Sidecar proxy: routes calls from one cluster to one service's backends.
class Proxy {
 public:
  /// All referenced objects must outlive the proxy; `deployments` must be
  /// aligned index-for-index with `split.backends()`.
  Proxy(sim::Simulator& sim, const WanModel& wan, ClusterId source,
        TrafficSplit& split, std::vector<ServiceDeployment*> deployments,
        metrics::Registry& registry, const HealthChecker* health,
        SplitRng rng, ProxyConfig config,
        const std::vector<std::string>& cluster_names);

  Proxy(const Proxy&) = delete;
  Proxy& operator=(const Proxy&) = delete;

  /// Sends one request through the mesh; `done` fires exactly once with the
  /// response (success, failure or timeout).
  void send(int depth, ResponseFn done) {
    send(depth, trace::SpanContext{}, std::move(done));
  }

  /// As above, recording a proxy span (with WAN-transit and server child
  /// spans) under `parent` when it is sampled and a tracer is attached.
  void send(int depth, trace::SpanContext parent, ResponseFn done);

  /// Attaches (or detaches, nullptr) the tracer spans are recorded into.
  /// Normally called through Mesh::set_tracer. Incompatible with the
  /// presampled discipline (the dest-side execution runs on another shard,
  /// where this tracer must not be touched).
  void set_tracer(trace::Tracer* tracer) {
    L3_EXPECTS(!(presampled_ && tracer != nullptr));
    tracer_ = tracer;
  }

  /// Switches this proxy to the presampled WAN discipline for sharded
  /// runs: BOTH transit delays are drawn source-side at send time (instead
  /// of the legacy scheme, which draws the return delay dest-side on this
  /// proxy's stream), and the dest-side work is posted through `router`
  /// under a shard-count-invariant key. Must be called before the first
  /// send; requires no tracer. The RNG draw sequence differs from the
  /// legacy discipline, so presampled runs have their own goldens — but
  /// they are byte-identical across any shard count.
  void enable_presampled(sim::ShardRouter* router);

  const TrafficSplit& split() const { return split_; }
  ClusterId source() const { return source_; }

  /// Requests currently in flight through this proxy (all backends).
  std::uint64_t inflight() const { return inflight_total_; }

  /// Lifetime request count (for tests/examples).
  std::uint64_t sent() const { return sent_; }

  /// Outlier-detection state (for tests/observability).
  const OutlierDetector& outlier_detector() const { return outlier_; }

  /// Cost-model accounting (all zeros when the model is disabled).
  const ProxyCostStats& cost_stats() const { return cost_stats_; }

  /// Idle pooled connections on the edge to backend `idx` (tests).
  std::size_t idle_connections(std::size_t idx) const {
    return cost_enabled_ ? pools_[idx].idle() : 0;
  }

  RoutingMode routing_mode() const { return config_.routing; }

  /// Picks a backend exactly as send() would, without sending — consumes
  /// the proxy's RNG stream. Exposed for the request_path bench and the
  /// picker distribution tests.
  std::size_t pick_backend() { return pick(); }

  /// Picks `m` backends with the same RNG draws and results as `m`
  /// successive pick_backend() calls at the current sim time, but loads the
  /// availability mask and picker table once and resolves the draws through
  /// the batch search kernel. Exposed for the batch-path bench and the
  /// batched-vs-scalar equivalence tests.
  void pick_backend_batch(std::uint32_t* out, std::size_t m);

  /// Pooled call states currently in flight. A finished call's slot is
  /// recycled as soon as its deadline entry reaches the front of the
  /// timeout ring (usually immediately — entries finish roughly FIFO), so
  /// this tracks the in-flight count rather than the armed-timeout count.
  /// Observability for the pool-reuse tests.
  std::size_t live_calls() const { return calls_.live(); }

 private:
  struct BackendSlot {
    ServiceDeployment* deployment;
    std::string dst_name;      ///< backend cluster name (span label)
    std::string wan_out_name;  ///< interned "wan:src->dst" span name
    std::string wan_in_name;   ///< interned "wan:dst->src" span name
    metrics::Counter* requests;
    metrics::Counter* success;
    metrics::Counter* failure;
    metrics::HistogramSeries* latency_success;
    metrics::HistogramSeries* latency_failure;
    metrics::Counter* latency_success_sum;
    metrics::Counter* latency_failure_sum;
    metrics::Gauge* inflight;
    /// Client-side latency filter + outstanding count for kPeakEwmaP2C.
    metrics::PeakEwma p2c_latency;
    std::uint32_t outstanding = 0;
  };

  /// Per-request state, pooled (l3/common/slot_pool.h). In-flight events
  /// reference it by handle; `pending` counts the visitors that still hold
  /// the slot (the response chain, plus the deadline-ring entry when a
  /// timeout is armed) and the slot is recycled only when the last one
  /// settles — so the timeout path can never observe a recycled slot, and
  /// the handle's generation check backstops even that invariant.
  struct CallState {
    SimTime start = 0.0;
    std::uint32_t backend = 0;
    std::uint8_t pending = 0;
    bool finished = false;
    trace::SpanContext span{};
    ResponseFn done;
  };
  using CallHandle = common::SlotPool<CallState>::Handle;

  /// Picks a backend according to the routing mode, skipping unhealthy and
  /// ejected backends when possible.
  std::size_t pick();
  std::size_t pick_weighted();
  std::size_t pick_p2c();

  /// Recomputes avail_mask_ when a health/outlier version bump or an
  /// ejection expiry invalidated it (no-op otherwise).
  void refresh_availability();

  /// Rebuilds the cumulative-weight picker table when the TrafficSplit
  /// generation or the availability mask changed (no-op otherwise).
  void refresh_picker();

  /// P2C cost: PeakEWMA latency × (outstanding + 1) — Linkerd's score.
  double p2c_cost(const BackendSlot& slot) const;

  /// Runs the cost model for one request to backend `idx`: leases a
  /// connection on that edge (handshake when none is warm) and admits the
  /// request into the bounded-concurrency CPU stage. Returns the total
  /// delay (queueing + service) folded into the outbound leg. Only called
  /// when the model is enabled; draws no RNG, schedules no events.
  SimDuration admit_cost(std::size_t idx);

  /// The presampled-discipline outbound leg: draws both transit delays on
  /// this proxy's stream and posts the dest-side execution through the
  /// shard router (see enable_presampled). `outbound` is the full
  /// source-side delay: the sampled WAN leg plus any cost-model delay.
  void send_presampled(CallHandle handle, int depth, BackendSlot& slot,
                       SimDuration outbound);

  void on_response(CallHandle handle, const Outcome& outcome);
  void finish(CallState& state, bool success, SimDuration latency,
              bool timed_out);
  /// Drops one pending visitor; releases the slot when none remain.
  void settle(CallHandle handle, CallState& state);

  // -- Timeout machinery ----------------------------------------------------
  //
  // The proxy's timeout is a single constant, so deadlines are FIFO: the
  // bucketed store below holds {deadline, handle} in arrival order and ONE
  // armed timer event stands in for all of them — instead of scheduling
  // (and dispatching) one timeout event per request, which dominated the
  // event queue at 1 of every 5 events. Invariant: whenever the store is
  // non-empty, a timer is armed at or before the front deadline, and a
  // re-arm lands exactly on the front deadline — so a call that really
  // times out is still processed at exactly start + timeout, same as a
  // per-request event. The timeout path draws no RNG, so the draw
  // sequence is untouched either way.
  //
  // Storage is radix-style bucketed: fixed 256-entry buckets filled at the
  // tail and drained at the head, with each bucket carrying its deadline
  // bounds. Admission (single or batch) only ever touches the tail bucket
  // and is O(1) amortized with NO copying — the old power-of-two ring
  // unrolled every live entry on growth — and drained buckets recycle
  // through a free list, so steady state allocates nothing. The per-bucket
  // `last_deadline` bound lets the timer sweep classify a whole due bucket
  // at once instead of comparing per entry.

  /// One armed deadline: the request's call-state handle plus when it
  /// times out. Entries are pushed at send() in deadline order.
  struct TimeoutEntry {
    SimTime deadline = 0.0;
    CallHandle handle{};
  };

  static constexpr std::size_t kTimeoutBucketSize = 256;
  struct TimeoutBucket {
    std::array<TimeoutEntry, kTimeoutBucketSize> slots;
    std::size_t head = 0;  ///< first live slot (advances on pop)
    std::size_t tail = 0;  ///< one past the last written slot
    SimTime last_deadline = 0.0;  ///< deadline of slots[tail-1]
  };

  TimeoutEntry& front_timeout() {
    return timeout_buckets_.front()->slots[timeout_buckets_.front()->head];
  }
  void push_timeout(SimTime deadline, CallHandle handle);
  /// Batch admission: appends `m` (deadline, handle) pairs in order; only
  /// the tail bucket is touched per entry.
  void push_timeout_batch(const TimeoutEntry* entries, std::size_t m);
  void pop_timeout();
  void arm_timeout_timer(SimTime deadline);
  /// The shared timer: settles finished front entries, times out due ones,
  /// then re-arms at the next live front deadline.
  void on_timeout_timer();
  /// Settles + pops front entries whose calls already finished, so their
  /// slots recycle promptly instead of idling until the deadline.
  void drain_finished_timeouts();

  sim::Simulator& sim_;
  const WanModel& wan_;
  /// Set by enable_presampled(): remote picks travel through this router
  /// instead of direct scheduling. Null in the legacy (single-simulator)
  /// discipline.
  sim::ShardRouter* router_ = nullptr;
  bool presampled_ = false;
  ClusterId source_;
  std::string src_name_;  ///< source cluster name (span label)
  std::string proxy_span_name_;  ///< interned "proxy:<service>"
  trace::Tracer* tracer_ = nullptr;
  TrafficSplit& split_;
  std::vector<BackendSlot> backends_;
  const HealthChecker* health_;
  SplitRng rng_;
  ProxyConfig config_;
  OutlierDetector outlier_;
  std::uint64_t inflight_total_ = 0;
  std::uint64_t sent_ = 0;

  // Data-plane cost model (DESIGN.md §16); all empty/unused when disabled.
  bool cost_enabled_ = false;
  ProxyCpuStage cpu_stage_;
  std::vector<EdgeConnectionPool> pools_;  ///< one per backend edge
  ProxyCostStats cost_stats_;
  // Low-cardinality audit families: one series per proxy ({split, src}),
  // not per edge. Registered only when the model is enabled, so zero-cost
  // runs keep a byte-identical registry.
  metrics::Counter* audit_handshakes_ = nullptr;
  metrics::Counter* audit_pool_hits_ = nullptr;
  metrics::Counter* audit_conn_closed_ = nullptr;

  common::SlotPool<CallState> calls_;

  // Availability cache: bit i set = backend i in rotation (all-true
  // fallback when nothing is available). Exact until a health/outlier
  // version bump or the next ejection expiry.
  std::uint64_t avail_mask_ = 0;
  SimTime avail_valid_until_ = 0.0;
  std::uint64_t health_version_seen_ = 0;
  std::uint64_t outlier_version_seen_ = 0;
  bool avail_valid_ = false;

  // Weighted-picker cache: cumulative weights over the available backends,
  // rebuilt only when (split generation, avail_mask_) changes.
  std::vector<std::uint64_t> cum_weights_;
  std::vector<std::uint32_t> cum_index_;
  std::uint64_t cum_total_ = 0;
  std::uint64_t picker_generation_ = 0;
  std::uint64_t picker_mask_ = 0;
  bool picker_valid_ = false;

  // P2C candidate cache: the available-backend index list, rebuilt only
  // when the availability mask changes (mask 0 = never built; a live mask
  // is never 0 thanks to the all-true fallback).
  std::vector<std::uint32_t> p2c_scratch_;
  std::uint64_t p2c_mask_ = 0;

  std::vector<std::uint64_t> batch_draws_;  ///< pick_backend_batch scratch

  // Bucketed deadline store (see the timeout-machinery comment above):
  // live buckets in FIFO order, drained buckets parked for reuse.
  std::vector<std::unique_ptr<TimeoutBucket>> timeout_buckets_;
  std::vector<std::unique_ptr<TimeoutBucket>> timeout_free_;
  std::size_t timeout_count_ = 0;
  bool timeout_timer_armed_ = false;
};

}  // namespace l3::mesh
