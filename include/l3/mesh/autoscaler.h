// Horizontal autoscaling of deployments — the orchestrator mechanism §3.2's
// rate controller is designed to cooperate with: when a traffic surge is
// spread across backends by Algorithm 2, the autoscaler has time to "scale
// up the faster backends in response", after which traffic can concentrate
// again. Modelled after the Kubernetes HPA: a periodic loop compares each
// deployment's utilisation (load / total concurrency) against thresholds
// and adds/removes replicas, with a scale-up provisioning delay (pod start
// time) and a stabilisation cooldown.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"
#include "l3/mesh/deployment.h"
#include "l3/sim/simulator.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace l3::mesh {

/// Periodic HPA-style replica scaler.
class Autoscaler {
 public:
  struct Config {
    SimDuration interval = 15.0;        ///< evaluation period
    double scale_up_utilisation = 0.8;  ///< load/capacity above → add replica
    double scale_down_utilisation = 0.3;///< below → remove an idle replica
    std::size_t min_replicas = 1;
    std::size_t max_replicas = 32;
    /// Time from the scale-up decision to the replica serving traffic
    /// (image pull + container start + readiness).
    SimDuration provisioning_delay = 20.0;
    /// Minimum time between scaling actions on one deployment.
    SimDuration cooldown = 30.0;
  };

  Autoscaler(sim::Simulator& sim, Config config) : sim_(sim), config_(config) {
    L3_EXPECTS(config.interval > 0.0);
    L3_EXPECTS(config.min_replicas >= 1);
    L3_EXPECTS(config.max_replicas >= config.min_replicas);
    L3_EXPECTS(config.scale_up_utilisation > config.scale_down_utilisation);
  }
  ~Autoscaler() { stop(); }
  Autoscaler(const Autoscaler&) = delete;
  Autoscaler& operator=(const Autoscaler&) = delete;

  /// Registers a deployment for scaling. Must outlive the autoscaler.
  void watch(ServiceDeployment& deployment);

  void start();
  void stop() { task_.cancel(); }

  /// One evaluation round (exposed for tests).
  void evaluate();

  std::uint64_t scale_ups() const { return scale_ups_; }
  std::uint64_t scale_downs() const { return scale_downs_; }

 private:
  struct Watched {
    ServiceDeployment* deployment;
    SimTime last_action = -1e18;
    std::size_t pending_up = 0;  ///< replicas still provisioning
  };

  /// The watch entry for `deployment`, or nullptr. Provisioning callbacks
  /// re-resolve their entry through this instead of holding an element
  /// pointer, so watched_ may reallocate freely (watch() after start()).
  Watched* find(const ServiceDeployment* deployment);

  sim::Simulator& sim_;
  Config config_;
  std::vector<Watched> watched_;
  /// Liveness token for in-flight provisioning events: schedule_after has
  /// no cancellation, so a callback outliving the autoscaler checks the
  /// weak_ptr and abandons the provisioning instead of touching freed
  /// state.
  std::shared_ptr<const bool> alive_ = std::make_shared<const bool>(true);
  sim::PeriodicHandle task_;
  std::uint64_t scale_ups_ = 0;
  std::uint64_t scale_downs_ = 0;
};

}  // namespace l3::mesh
