// SMI TrafficSplit equivalent (§4): the declarative object that distributes
// one source cluster's outbound traffic for a service across the service's
// per-cluster backends, proportionally to non-negative integer weights.
// Weight changes flow through the ControlPlane, which models the Linkerd
// control plane's configuration push (optional propagation delay).
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"
#include "l3/mesh/types.h"
#include "l3/sim/simulator.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace l3::mesh {

/// One backend entry of a TrafficSplit.
struct SplitBackend {
  BackendRef ref;
  std::uint64_t weight = 1;
};

/// Traffic distribution for (source cluster, target service).
class TrafficSplit {
 public:
  /// Creates a split with equal initial weights for every backend.
  TrafficSplit(std::string service, ClusterId source,
               std::vector<BackendRef> backends,
               std::uint64_t initial_weight);

  const std::string& service() const { return service_; }
  ClusterId source() const { return source_; }

  std::span<const SplitBackend> backends() const { return backends_; }
  std::size_t backend_count() const { return backends_.size(); }

  /// Current weights, in backend order.
  std::vector<std::uint64_t> weights() const;

  /// Applies new weights immediately (the ControlPlane calls this; tests
  /// may too). Size must match; weights may be zero (a backend with zero
  /// weight receives no traffic). A call that changes nothing leaves the
  /// generation untouched.
  void set_weights(std::span<const std::uint64_t> weights);

  /// Monotone counter bumped on every *effective* weight change — lets
  /// observers (proxies' cached pickers, tests) detect propagation without
  /// reacting to no-op re-publications.
  std::uint64_t generation() const { return generation_; }

 private:
  std::string service_;
  ClusterId source_;
  std::vector<SplitBackend> backends_;
  std::uint64_t generation_ = 0;
};

/// Applies weight updates to TrafficSplits after a configurable propagation
/// delay, modelling the control-plane push to sidecar proxies (§4 notes too
/// frequent updates are to be avoided at scale).
class ControlPlane {
 public:
  ControlPlane(sim::Simulator& sim, SimDuration propagation_delay)
      : sim_(sim), propagation_delay_(propagation_delay) {
    L3_EXPECTS(propagation_delay >= 0.0);
  }

  /// Schedules `weights` to take effect on `split` after the propagation
  /// delay (immediately when the delay is zero).
  void apply(TrafficSplit& split, std::vector<std::uint64_t> weights);

  SimDuration propagation_delay() const { return propagation_delay_; }
  void set_propagation_delay(SimDuration d) {
    L3_EXPECTS(d >= 0.0);
    propagation_delay_ = d;
  }

  /// Number of weight updates pushed so far.
  std::uint64_t updates_applied() const { return updates_; }

 private:
  sim::Simulator& sim_;
  SimDuration propagation_delay_;
  std::uint64_t updates_ = 0;
};

}  // namespace l3::mesh
