// Core vocabulary types of the mesh substrate: clusters, backend references,
// and the request/response/outcome records that flow between proxies,
// deployments and behaviors.
#pragma once

#include "l3/common/function.h"
#include "l3/common/time.h"

#include <cstdint>
#include <string>

namespace l3::mesh {

/// Dense cluster identifier (index into Mesh's cluster table).
using ClusterId = std::uint32_t;

/// A Kubernetes-cluster-equivalent: a named failure/latency domain.
struct Cluster {
  ClusterId id = 0;
  std::string name;    ///< e.g. "cluster-1"
  std::string region;  ///< e.g. "eu-central-1"
};

/// Identifies one TrafficSplit backend: a service's deployment in one
/// cluster (the granularity at which the paper's L3 assigns weights).
struct BackendRef {
  std::string service;
  ClusterId cluster = 0;

  friend bool operator==(const BackendRef&, const BackendRef&) = default;
};

/// Result of server-side request handling, produced by a ServiceBehavior or
/// by the deployment itself (queue rejection).
struct Outcome {
  bool success = true;
  /// True when the request never reached a replica (queue overflow /
  /// deployment down); such failures are fast, unlike slow upstream errors.
  bool rejected = false;
};

/// What the caller of Mesh::call() receives.
struct Response {
  bool success = true;
  /// End-to-end latency as seen by the calling proxy (seconds), including
  /// WAN transit, queueing and service execution.
  SimDuration latency = 0.0;
  /// Which backend cluster served (or was chosen to serve) the request.
  ClusterId backend_cluster = 0;
  /// True when the response is a client-side timeout, not a server reply.
  bool timed_out = false;
};

/// Completion callback for asynchronous calls through the mesh. Move-only
/// with inline storage (see l3/common/function.h); capacities are budgeted
/// so the layers nest without heap fallback: an OutcomeFn capturing
/// {this, pool handle} fits its 32 bytes, a ResponseFn capturing the
/// client's continuation fits 40, and either plus a scalar still fits the
/// 48-byte sim::EventFn that carries it across the event queue.
using ResponseFn = common::SmallFn<void(const Response&), 40>;

/// Completion callback for server-side behaviors.
using OutcomeFn = common::SmallFn<void(const Outcome&), 32>;

}  // namespace l3::mesh
