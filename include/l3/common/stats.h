// Small statistics helpers used by the benchmark harness and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace l3 {

/// Exact q-quantile of a sample (nearest-rank with linear interpolation,
/// matching numpy's default). `values` need not be sorted; an internal copy
/// is sorted. Returns 0 for an empty sample.
double percentile(std::span<const double> values, double q);

/// As percentile(), but `sorted` must already be in ascending order — no
/// copy, no sort. Lets callers that need several quantiles of the same
/// sample sort once; the result is identical to percentile() on the
/// unsorted sample.
double percentile_sorted(std::span<const double> sorted, double q);

/// Arithmetic mean, or 0 for an empty sample.
double mean(std::span<const double> values);

/// Population standard deviation, or 0 for fewer than 2 samples.
double stddev(std::span<const double> values);

/// A one-line latency summary as the paper reports: count plus the usual
/// percentiles, all in the unit of the underlying samples (seconds).
struct LatencySummary {
  std::size_t count = 0;
  double mean = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double max = 0.0;
};

/// Builds a LatencySummary from raw samples.
LatencySummary summarize(std::span<const double> values);

}  // namespace l3
