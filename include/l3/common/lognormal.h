// Log-normal parameter fitting. The paper observes (§3.1) that network/
// service latency is well characterised by a log-normal distribution; the
// trace generators therefore describe each cluster's latency at time t by a
// target median and target P99, which this header converts into the (mu,
// sigma) parameters of the underlying normal.
#pragma once

#include "l3/common/assert.h"

#include <cmath>

namespace l3 {

/// Parameters of the normal underlying a log-normal distribution.
struct LogNormalParams {
  double mu = 0.0;     ///< mean of log(X)
  double sigma = 1.0;  ///< stddev of log(X), > 0
};

/// z-score of the q-quantile of the standard normal (Acklam's rational
/// approximation, |relative error| < 1.15e-9 — far below measurement noise).
double normal_quantile(double q);

/// Fits log-normal parameters so that the distribution has the given median
/// and the given value at quantile `q` (e.g. the P99). Requires
/// 0 < median < value_at_q and 0.5 < q < 1.
LogNormalParams fit_lognormal(double median, double value_at_q, double q);

/// The value of the `q`-quantile of a log-normal with the given parameters.
inline double lognormal_quantile(const LogNormalParams& p, double q) {
  return std::exp(p.mu + p.sigma * normal_quantile(q));
}

/// The mean of a log-normal with the given parameters.
inline double lognormal_mean(const LogNormalParams& p) {
  return std::exp(p.mu + 0.5 * p.sigma * p.sigma);
}

}  // namespace l3
