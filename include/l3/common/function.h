// SmallFn: a move-only callable with inline storage for small captures —
// the building block of the allocation-free hot paths. The event core's
// EventFn and the mesh's per-request callbacks (ResponseFn, OutcomeFn,
// ReplicaJob) are all instantiations of this template with capacities sized
// so that each layer's completion closure nests inline in the next one
// (a ResponseFn holding an OutcomeFn-sized capture still fits an EventFn).
//
// Why not std::function: std::function must be copyable, so a callback that
// captures another callback either heap-allocates or forces shared_ptr
// ownership of the chain. SmallFn is move-only — closures own their
// captures, move through schedule_after()/submit() without refcounting, and
// stay inline up to the configured capacity.
//
// Storage is 8-byte aligned (not max_align_t): the hot-path closures
// capture pointers, handles and doubles, and the tighter alignment keeps
// sizeof(SmallFn<Sig, C>) == C + 8 so nested capacities can be budgeted
// exactly. Callables needing stricter alignment fall back to the heap.
#pragma once

#include "l3/common/assert.h"

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace l3::common {

template <typename Signature, std::size_t Capacity>
class SmallFn;  // primary template: only R(Args...) is specialized

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity> {
 public:
  /// Captures up to this many bytes (with alignment <= 8) live inline.
  static constexpr std::size_t kInlineCapacity = Capacity;

  SmallFn() noexcept = default;
  SmallFn(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): drop-in for
                    // std::function at call sites.
    using D = std::decay_t<F>;
    if constexpr (fits_inline<D>()) {
      ::new (static_cast<void*>(storage_.buf)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      storage_.ptr = new D(std::forward<F>(f));
      ops_ = &kHeapOps<D>;
    }
    static_assert(sizeof(D) > 0, "callable must be complete");
  }

  SmallFn(SmallFn&& other) noexcept : ops_(other.ops_) {
    relocate_from(other);
  }

  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      relocate_from(other);
    }
    return *this;
  }

  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { reset(); }

  /// Destroys the held callable (if any), leaving the SmallFn empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      if (!ops_->trivial) ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  R operator()(Args... args) {
    L3_EXPECTS(ops_ != nullptr);
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  friend bool operator==(const SmallFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ == nullptr;
  }
  friend bool operator!=(const SmallFn& fn, std::nullptr_t) noexcept {
    return fn.ops_ != nullptr;
  }

  /// Whether the held callable lives in the inline buffer (introspection
  /// for tests and benches; empty SmallFns report false).
  bool stored_inline() const noexcept {
    return ops_ != nullptr && ops_->inline_storage;
  }

  /// Whether a callable of type F would be stored inline.
  template <typename F>
  static constexpr bool fits_inline() {
    using D = std::decay_t<F>;
    return sizeof(D) <= kInlineCapacity && alignof(D) <= kStorageAlign &&
           std::is_nothrow_move_constructible_v<D>;
  }

 private:
  static constexpr std::size_t kStorageAlign = 8;
  static_assert(Capacity >= sizeof(void*) && Capacity % kStorageAlign == 0,
                "capacity must hold the heap pointer and keep alignment");

  union Storage {
    alignas(kStorageAlign) unsigned char buf[Capacity];
    void* ptr;
  };

  struct Ops {
    R (*invoke)(Storage&, Args&&...);
    /// Move-constructs `dst` from `src` and destroys the source object
    /// (for heap storage: steals the pointer).
    void (*relocate)(Storage& dst, Storage& src) noexcept;
    void (*destroy)(Storage&) noexcept;
    bool inline_storage;
    /// Trivially copyable + trivially destructible inline callables take a
    /// fast path: relocation is a raw Storage copy (no indirect call) and
    /// destruction is a no-op — the common case for hot-path closures that
    /// capture pointers, handles and scalars.
    bool trivial;
  };

  /// Shared tail of move construction/assignment; assumes ops_ was copied
  /// from `other` and own storage holds no live object.
  void relocate_from(SmallFn& other) noexcept {
    if (ops_ != nullptr) {
      if (ops_->trivial) {
        storage_ = other.storage_;
      } else {
        ops_->relocate(storage_, other.storage_);
      }
      other.ops_ = nullptr;
    }
  }

  template <typename D>
  static D* inline_object(Storage& s) noexcept {
    return std::launder(reinterpret_cast<D*>(s.buf));
  }

  template <typename D>
  static constexpr Ops make_inline_ops() {
    return Ops{
        [](Storage& s, Args&&... args) -> R {
          return (*inline_object<D>(s))(std::forward<Args>(args)...);
        },
        [](Storage& dst, Storage& src) noexcept {
          D* obj = inline_object<D>(src);
          ::new (static_cast<void*>(dst.buf)) D(std::move(*obj));
          obj->~D();
        },
        [](Storage& s) noexcept { inline_object<D>(s)->~D(); },
        true,
        std::is_trivially_copyable_v<D> &&
            std::is_trivially_destructible_v<D>,
    };
  }

  template <typename D>
  static constexpr Ops make_heap_ops() {
    return Ops{
        [](Storage& s, Args&&... args) -> R {
          return (*static_cast<D*>(s.ptr))(std::forward<Args>(args)...);
        },
        [](Storage& dst, Storage& src) noexcept { dst.ptr = src.ptr; },
        [](Storage& s) noexcept { delete static_cast<D*>(s.ptr); },
        false,
        false,
    };
  }

  template <typename D>
  static constexpr Ops kInlineOps = make_inline_ops<D>();
  template <typename D>
  static constexpr Ops kHeapOps = make_heap_ops<D>();

  const Ops* ops_ = nullptr;
  // Zero-initialized so the trivial relocation path (a whole-union copy)
  // never reads indeterminate tail bytes when the held callable is smaller
  // than the capacity. A handful of stores per construction, elided by the
  // optimizer when the buffer is immediately overwritten.
  Storage storage_{};
};

}  // namespace l3::common
