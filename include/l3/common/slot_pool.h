// SlotPool: a chunked slab allocator with generation-tagged handles — the
// ownership model of the per-request hot path. Call state that used to live
// in a shared_ptr (one allocation + refcount traffic per request) lives in
// a pooled slot instead; in-flight callbacks carry a copyable 8-byte Handle
// and re-validate it on every dereference, so a stale callback (e.g. a
// timeout firing after the response already completed and the slot was
// recycled) resolves to nullptr instead of touching the new occupant.
//
// Slots are allocated in fixed-size chunks that are never moved or freed
// while the pool lives: growth allocates a new chunk, so a `T*` obtained
// from get() stays valid across acquire() calls from re-entrant code. The
// free list recycles indices LIFO; steady state runs allocation-free with
// the pool high-watermarked at the maximum number of live slots.
#pragma once

#include "l3/common/assert.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace l3::common {

template <typename T>
class SlotPool {
 public:
  /// Copyable, trivially-destructible reference to one slot incarnation.
  /// A default-constructed Handle (generation 0) never resolves: live slot
  /// generations start at 1.
  struct Handle {
    std::uint32_t index = 0;
    std::uint32_t generation = 0;
  };

  SlotPool() = default;
  SlotPool(const SlotPool&) = delete;
  SlotPool& operator=(const SlotPool&) = delete;

  /// Takes a free slot (recycled or newly grown) and returns its handle.
  /// The slot's T keeps whatever value it last held — callers initialize
  /// the fields they use. Never invalidates other slots' pointers.
  Handle acquire() {
    std::uint32_t index;
    if (!free_.empty()) {
      index = free_.back();
      free_.pop_back();
    } else {
      index = next_unused_++;
      if (index / kChunkSize == chunks_.size()) {
        chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
      }
    }
    ++live_;
    Slot& s = slot(index);
    s.live = true;
    return Handle{index, s.generation};
  }

  /// The slot's value, or nullptr when the handle is stale (the slot was
  /// released — and possibly re-acquired — since the handle was issued).
  T* get(Handle h) noexcept {
    if (h.index >= next_unused_) return nullptr;
    Slot& s = slot(h.index);
    return s.generation == h.generation ? &s.value : nullptr;
  }

  /// Returns the slot to the free list and bumps its generation, making
  /// every outstanding handle to this incarnation stale. The value is NOT
  /// cleared — move heavy members out before releasing.
  void release(Handle h) {
    L3_EXPECTS(h.index < next_unused_);
    Slot& s = slot(h.index);
    L3_EXPECTS(s.generation == h.generation);
    ++s.generation;
    s.live = false;
    free_.push_back(h.index);
    L3_ASSERT(live_ > 0);
    --live_;
  }

  /// Number of currently acquired slots.
  std::size_t live() const noexcept { return live_; }

  /// Total slots ever created (the high-water mark, in slots).
  std::size_t capacity() const noexcept { return next_unused_; }

  /// Visits every live slot as (handle, value), in index order. The
  /// callback must not acquire from or release into the pool — collect
  /// handles first, then act on them (fault injection enumerates in-flight
  /// calls this way when a replica crashes).
  template <typename Fn>
  void for_each_live(Fn&& fn) {
    for (std::uint32_t i = 0; i < next_unused_; ++i) {
      Slot& s = slot(i);
      if (s.live) fn(Handle{i, s.generation}, s.value);
    }
  }

 private:
  static constexpr std::uint32_t kChunkSize = 256;

  struct Slot {
    T value{};
    std::uint32_t generation = 1;
    bool live = false;
  };

  Slot& slot(std::uint32_t index) noexcept {
    return chunks_[index / kChunkSize][index % kChunkSize];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::vector<std::uint32_t> free_;
  std::uint32_t next_unused_ = 0;
  std::size_t live_ = 0;
};

}  // namespace l3::common
