// ASCII table printer for the benchmark harness. Every bench binary prints
// the rows/series of its paper figure through this, so output is uniform and
// grep-able (`column: value` pairs plus an aligned table).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace l3 {

/// Accumulates rows of string cells and prints them aligned.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Adds one row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Renders the table (header, separator, rows) to `os`.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with the given number of decimals (locale-independent).
std::string fmt_double(double value, int decimals = 1);

/// Formats a latency given in seconds as milliseconds with one decimal,
/// matching the units of the paper's figures.
std::string fmt_ms(double seconds, int decimals = 1);

/// Formats a ratio as a percentage with the given decimals.
std::string fmt_percent(double ratio, int decimals = 1);

}  // namespace l3
