// Deterministic, splittable random number generation. Every stochastic
// component of the simulation owns its own SplitRng stream derived from the
// experiment seed, so that adding a component or reordering draws in one
// component never perturbs another — a requirement for reproducible
// experiments and for the seed-sweep property tests.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace l3 {

/// A deterministic random stream with the distribution helpers the library
/// needs. Streams are cheap to copy; `split(name)` derives an independent
/// child stream from a string tag.
class SplitRng {
 public:
  /// Creates a stream from a 64-bit seed.
  explicit SplitRng(std::uint64_t seed) : engine_(mix(seed)), seed_(seed) {}

  /// Derives an independent child stream keyed by `tag`. The child depends
  /// only on this stream's seed and the tag, not on how many numbers have
  /// been drawn from the parent.
  SplitRng split(std::string_view tag) const {
    std::uint64_t h = seed_ ^ 0xcbf29ce484222325ULL;  // FNV offset basis
    for (char c : tag) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 0x100000001b3ULL;  // FNV-1a prime
    }
    return SplitRng(h);
  }

  /// Derives an independent child stream keyed by an index.
  SplitRng split(std::uint64_t index) const {
    return SplitRng(seed_ ^ (0x9e3779b97f4a7c15ULL * (index + 1)));
  }

  /// Uniform double in the half-open interval [0, 1): 0.0 is a possible
  /// return value, 1.0 is not (generate_canonical with 53 bits draws from
  /// {k·2⁻⁵³ : 0 ≤ k < 2⁵³}). Callers mapping onto an index range of size n
  /// via `uniform() * n` must still clamp the result to n-1: the
  /// multiplication can round up to n when n is not a power of two.
  double uniform() { return std::generate_canonical<double, 53>(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  /// Exponential with the given rate (events per second).
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Log-normal with the given parameters of the underlying normal.
  double lognormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Raw 64-bit draw.
  std::uint64_t next_u64() { return engine_(); }

  /// The (unmixed) seed this stream was created from.
  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: decorrelates sequential/related seeds.
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  std::mt19937_64 engine_;
  std::uint64_t seed_ = 0;
};

}  // namespace l3
