// Two latency-histogram implementations with distinct roles:
//
//  * `LogHistogram` — a high-resolution, HDR-style logarithmic histogram used
//    by the benchmark harness to compute ground-truth percentiles of request
//    latency (the role wrk2's HdrHistogram plays in the paper's setup).
//
//  * `FixedBucketHistogram` — a coarse, fixed-boundary cumulative histogram
//    mirroring what Linkerd proxies export to Prometheus. The L3 controller
//    only ever sees quantiles estimated from these buckets, reproducing the
//    measurement granularity (and its artefacts) of the real system.
#pragma once

#include "l3/common/assert.h"

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

namespace l3 {

/// High-resolution logarithmic histogram over positive values.
///
/// Buckets are geometrically spaced with ~1% relative width, covering
/// [min_value, max_value]; values outside are clamped. Quantile queries
/// return the geometric midpoint of the containing bucket, so the relative
/// quantile error is bounded by half the bucket width (~0.5%).
class LogHistogram {
 public:
  /// Constructs a histogram covering [min_value, max_value] (seconds by
  /// convention) with the given relative precision per bucket.
  explicit LogHistogram(double min_value = 1e-6, double max_value = 1e4,
                        double precision = 0.01);

  /// Records one observation (clamped into range).
  void record(double value);

  /// Records `n` observations of the same value.
  void record_n(double value, std::uint64_t n);

  /// Merges another histogram with identical geometry into this one.
  void merge(const LogHistogram& other);

  /// The q-quantile (0 < q <= 1) of the recorded values, or 0 if empty.
  double quantile(double q) const;

  /// Arithmetic mean of recorded values (bucket midpoints), or 0 if empty.
  double mean() const;

  std::uint64_t count() const { return count_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }

  /// Removes all observations.
  void reset();

 private:
  std::size_t index_of(double value) const;
  double midpoint_of(std::size_t index) const;

  double min_value_;
  double log_min_;
  double log_ratio_;  // log(1 + precision)
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  double sum_ = 0.0;
};

/// Fixed-boundary histogram with Linkerd-style latency buckets.
///
/// Boundaries are upper bounds in seconds; an implicit +Inf bucket catches
/// the rest. `counts()` are per-bucket (not cumulative); the metrics layer
/// converts to Prometheus cumulative form when exporting.
class FixedBucketHistogram {
 public:
  /// Linkerd's default latency bucket upper bounds, in seconds
  /// (1 ms … 60 s, matching the proxy's `response_latency_ms` buckets).
  static const std::vector<double>& default_latency_bounds();

  /// Constructs with the given strictly increasing upper bounds (seconds).
  explicit FixedBucketHistogram(std::vector<double> upper_bounds);

  /// Constructs with the default Linkerd latency bounds.
  FixedBucketHistogram() : FixedBucketHistogram(default_latency_bounds()) {}

  /// Records one observation.
  void record(double value);

  /// Per-bucket counts; size() == bounds().size() + 1 (last is +Inf).
  const std::vector<std::uint64_t>& counts() const { return counts_; }

  /// Bucket upper bounds in seconds (excluding the implicit +Inf).
  const std::vector<double>& bounds() const { return bounds_; }

  std::uint64_t total_count() const { return total_; }

  void reset();

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Prometheus `histogram_quantile()` over a cumulative-count vector.
///
/// `bounds` are the finite bucket upper bounds; `cumulative` must have
/// bounds.size() + 1 entries (the last being the +Inf bucket's cumulative
/// count, i.e. the total). Values need not be integers — in practice they
/// are per-second rates. Linear interpolation within the located bucket,
/// exactly as Prometheus computes it; returns the highest finite bound when
/// the quantile falls in the +Inf bucket, and 0 when the total is 0.
double histogram_quantile(std::span<const double> bounds,
                          std::span<const double> cumulative, double q);

}  // namespace l3
