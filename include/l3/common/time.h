// Simulated-time primitives. The whole library measures time in seconds as
// `double`, which keeps the EWMA decay math of the paper (Eq. 1/2, which is
// expressed in terms of a continuous Δt) exact and free of unit juggling.
#pragma once

namespace l3 {

/// A point in simulated time, in seconds since simulation start.
using SimTime = double;

/// A span of simulated time, in seconds.
using SimDuration = double;

namespace time_literals {
/// 1 millisecond expressed in seconds.
inline constexpr SimDuration operator""_ms(long double v) {
  return static_cast<SimDuration>(v) / 1000.0;
}
inline constexpr SimDuration operator""_ms(unsigned long long v) {
  return static_cast<SimDuration>(v) / 1000.0;
}
/// 1 second.
inline constexpr SimDuration operator""_s(long double v) {
  return static_cast<SimDuration>(v);
}
inline constexpr SimDuration operator""_s(unsigned long long v) {
  return static_cast<SimDuration>(v);
}
/// 1 minute expressed in seconds.
inline constexpr SimDuration operator""_min(long double v) {
  return static_cast<SimDuration>(v) * 60.0;
}
inline constexpr SimDuration operator""_min(unsigned long long v) {
  return static_cast<SimDuration>(v) * 60.0;
}
}  // namespace time_literals

/// Converts seconds to milliseconds (for reporting, mirroring the paper's
/// figures which are all in ms).
inline constexpr double to_ms(SimDuration seconds) { return seconds * 1000.0; }

/// Converts milliseconds to seconds.
inline constexpr SimDuration from_ms(double ms) { return ms / 1000.0; }

}  // namespace l3
