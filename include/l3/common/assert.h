// Contract-checking macros in the spirit of the C++ Core Guidelines (I.6,
// I.8): preconditions via L3_EXPECTS, postconditions via L3_ENSURES and
// internal invariants via L3_ASSERT. Violations throw ContractViolation so
// that tests can assert on them and long-running simulations fail loudly
// instead of silently corrupting results.
#pragma once

#include <stdexcept>
#include <string>

namespace l3 {

/// Thrown when a contract annotated with L3_EXPECTS / L3_ENSURES / L3_ASSERT
/// is violated. Carries the failing expression and source location.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* kind, const char* expr, const char* file,
                    int line)
      : std::logic_error(std::string(kind) + " failed: `" + expr + "` at " +
                         file + ":" + std::to_string(line)) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  throw ContractViolation(kind, expr, file, line);
}
}  // namespace detail

}  // namespace l3

#define L3_CONTRACT_CHECK(kind, cond)                                \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::l3::detail::contract_fail(kind, #cond, __FILE__, __LINE__);  \
    }                                                                \
  } while (false)

/// Precondition: argument/state requirements on entry to a function.
#define L3_EXPECTS(cond) L3_CONTRACT_CHECK("precondition", cond)
/// Postcondition: guarantees on exit from a function.
#define L3_ENSURES(cond) L3_CONTRACT_CHECK("postcondition", cond)
/// Internal invariant that should hold mid-function.
#define L3_ASSERT(cond) L3_CONTRACT_CHECK("assertion", cond)
