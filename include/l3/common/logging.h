// Per-simulation leveled logging. There is no process singleton: every
// sim::Simulator owns a LogContext and binds it to the constructing thread
// for its lifetime (ScopedLogBind), so two Simulators running on different
// threads log through fully isolated contexts — levels, time providers and
// sinks never bleed between concurrent simulation cells. Code that logs
// outside any simulation falls back to a process-default context.
//
// The L3_LOG macro short-circuits on a disabled level BEFORE the streaming
// operands are evaluated and before the LogLine's ostringstream is built,
// so disabled logging costs one level comparison on the hot path.
//
// Output goes to stderr so bench tables on stdout stay machine-parsable;
// the default sink formats each record into a single buffered write, so
// concurrent contexts never interleave characters within a line.
#pragma once

#include "l3/common/time.h"

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace l3 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// One log line as handed to a sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Sim time at emission; meaningful only when `has_time` is true (a time
  /// provider was installed).
  SimTime time = 0.0;
  bool has_time = false;
  std::string_view component;
  std::string_view message;
};

/// Logging configuration and sink for one simulation (or for the process
/// default). A context is not internally synchronised: it must only be used
/// from the thread it is bound on. Isolation between concurrent simulations
/// comes from each Simulator binding its own context to its own thread.
class LogContext {
 public:
  using TimeProvider = std::function<SimTime()>;
  using Sink = std::function<void(const LogRecord&)>;

  LogContext() = default;
  LogContext(const LogContext&) = delete;
  LogContext& operator=(const LogContext&) = delete;

  /// The context bound to the current thread (innermost ScopedLogBind),
  /// falling back to `process_default()` when nothing is bound.
  static LogContext& current();

  /// The fallback context used by threads with no active binding.
  static LogContext& process_default();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Whether a line at `level` would be emitted.
  bool enabled(LogLevel level) const {
    return level >= level_ && level_ != LogLevel::kOff;
  }

  /// Installs a sim-time source (e.g. [&sim] { return sim.now(); }); lines
  /// then carry a `t=...s` stamp. Pass nullptr to remove. The provider must
  /// not outlive what it captures; sim::Simulator wires its own clock into
  /// the context it owns, so their lifetimes coincide.
  void set_time_provider(TimeProvider provider) {
    time_provider_ = std::move(provider);
  }

  /// Replaces the stderr sink (test capture). Pass nullptr to restore the
  /// default.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Emits one line at `level` if it passes the filter.
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  LogLevel level_ = LogLevel::kWarn;
  TimeProvider time_provider_;
  Sink sink_;
};

/// RAII binding of a LogContext to the current thread. Bindings nest like
/// scopes: destruction restores whatever was bound before.
class ScopedLogBind {
 public:
  explicit ScopedLogBind(LogContext& context);
  ~ScopedLogBind();
  ScopedLogBind(const ScopedLogBind&) = delete;
  ScopedLogBind& operator=(const ScopedLogBind&) = delete;

 private:
  LogContext* previous_;
};

namespace detail {
/// Builds a message with ostream syntax and emits it on destruction. Only
/// constructed when the level passed the filter (see L3_LOG).
class LogLine {
 public:
  LogLine(LogContext& context, LogLevel level, std::string_view component)
      : context_(context), level_(level), component_(component) {}
  ~LogLine() { context_.log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogContext& context_;
  LogLevel level_;
  std::string_view component_;
  std::ostringstream stream_;
};

/// Swallows a LogLine inside the ternary of L3_LOG so both branches have
/// type void. operator& binds looser than <<, so the whole chain streams
/// into the line before it is voided.
struct LogVoidify {
  void operator&(const LogLine&) const {}
};
}  // namespace detail

}  // namespace l3

/// Usage: L3_LOG(kInfo, "core") << "weights updated: " << n;
/// A disabled level skips the stream construction and every operand.
#define L3_LOG(level, component)                                         \
  !::l3::LogContext::current().enabled(::l3::LogLevel::level)            \
      ? (void)0                                                          \
      : ::l3::detail::LogVoidify{} &                                     \
            ::l3::detail::LogLine(::l3::LogContext::current(),           \
                                  ::l3::LogLevel::level, component)
