// Minimal leveled logger. The simulator is single-threaded by design, so no
// synchronisation is needed; output goes to stderr so bench tables on stdout
// stay machine-parsable. An optional time provider stamps each line with the
// current sim time, and a pluggable sink lets tests capture output.
#pragma once

#include "l3/common/time.h"

#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

namespace l3 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// One log line as handed to a sink.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Sim time at emission; meaningful only when `has_time` is true (a time
  /// provider was installed).
  SimTime time = 0.0;
  bool has_time = false;
  std::string_view component;
  std::string_view message;
};

/// Process-wide logging configuration and sink.
class Logger {
 public:
  using TimeProvider = std::function<SimTime()>;
  using Sink = std::function<void(const LogRecord&)>;

  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Installs a sim-time source (e.g. [&sim] { return sim.now(); }); lines
  /// then carry a `t=...s` stamp. Pass nullptr to remove. The provider must
  /// be cleared before the simulator it captures is destroyed.
  void set_time_provider(TimeProvider provider) {
    time_provider_ = std::move(provider);
  }

  /// Replaces the stderr sink (test capture). Pass nullptr to restore the
  /// default.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// Emits one line at `level` if it passes the filter.
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  LogLevel level_ = LogLevel::kWarn;
  TimeProvider time_provider_;
  Sink sink_;
};

namespace detail {
/// Builds a message with ostream syntax and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace l3

/// Usage: L3_LOG(kInfo, "core") << "weights updated: " << n;
#define L3_LOG(level, component) \
  ::l3::detail::LogLine(::l3::LogLevel::level, component)
