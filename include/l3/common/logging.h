// Minimal leveled logger. The simulator is single-threaded by design, so no
// synchronisation is needed; output goes to stderr so bench tables on stdout
// stay machine-parsable.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace l3 {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide logging configuration and sink.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Emits one line at `level` if it passes the filter.
  void log(LogLevel level, std::string_view component, std::string_view msg);

 private:
  LogLevel level_ = LogLevel::kWarn;
};

namespace detail {
/// Builds a message with ostream syntax and emits it on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component)
      : level_(level), component_(component) {}
  ~LogLine() { Logger::instance().log(level_, component_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::string component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace l3

/// Usage: L3_LOG(kInfo, "core") << "weights updated: " << n;
#define L3_LOG(level, component) \
  ::l3::detail::LogLine(::l3::LogLevel::level, component)
