// Cross-shard mailboxes for the sharded simulator: each directed shard pair
// gets a bounded staging buffer on the sending side (flushed at conservative
// window boundaries, or early when full — the out-of-band buffer discipline
// used by deltafs-vpic's preload shuffle) feeding a mutex-protected inbox on
// the receiving side.
//
// Determinism does NOT depend on flush or drain timing: every message
// carries a shard-count-invariant (origin cluster, origin sequence) key,
// assigned on the origin shard, and the receiving Simulator orders
// deliveries by that key (Simulator::schedule_delivered). Flushes only
// affect WHEN a message becomes visible, never where it sorts.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"
#include "l3/sim/event.h"

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace l3::sim {

/// One cross-shard delivery: run `fn` on the owning shard's simulator at
/// `time`, ordered by the (origin_cluster, origin_seq) key.
struct ShardMessage {
  SimTime time = 0.0;
  std::uint32_t origin_cluster = 0;
  std::uint32_t origin_seq = 0;
  EventFn fn;
};

/// Flush/traffic counters for one staging buffer (or a sum over several).
struct MailboxStats {
  std::uint64_t messages = 0;         ///< messages posted
  std::uint64_t flushes = 0;          ///< non-empty flushes delivered
  std::uint64_t capacity_flushes = 0; ///< flushes forced by a full buffer

  MailboxStats& operator+=(const MailboxStats& o) {
    messages += o.messages;
    flushes += o.flushes;
    capacity_flushes += o.capacity_flushes;
    return *this;
  }
};

/// Receiving side: one inbox per shard, shared by all senders. deliver()
/// and drain() are the only cross-thread touch points in the engine's data
/// path; the mutex hand-off is what gives the barrier protocol its
/// happens-before edge (flush-before-publish on the sender, acquire-then-
/// drain on the receiver).
class MailboxInbox {
 public:
  /// Moves a whole staged batch in (sender side). `batch` is left empty
  /// with capacity intact, ready for reuse.
  void deliver(std::vector<ShardMessage>& batch) {
    if (batch.empty()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      pending_.insert(pending_.end(), std::make_move_iterator(batch.begin()),
                      std::make_move_iterator(batch.end()));
    }
    batch.clear();
  }

  /// Moves everything delivered so far out into `out` (appended; receiver
  /// side). Returns the number of messages drained.
  std::size_t drain(std::vector<ShardMessage>& out) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::size_t n = pending_.size();
    out.insert(out.end(), std::make_move_iterator(pending_.begin()),
               std::make_move_iterator(pending_.end()));
    pending_.clear();
    return n;
  }

 private:
  std::mutex mu_;
  std::vector<ShardMessage> pending_;
};

/// Sending side: per (source shard, target shard) bounded buffer. Owned and
/// touched by the source shard's thread only; the target inbox is the sole
/// cross-thread boundary.
class MailboxStaging {
 public:
  MailboxStaging() = default;

  void bind(MailboxInbox* inbox, std::size_t capacity) {
    L3_EXPECTS(inbox != nullptr && capacity >= 1);
    inbox_ = inbox;
    capacity_ = capacity;
    buf_.reserve(capacity);
  }

  /// Stages one message; flushes to the inbox first if the buffer is full.
  void post(ShardMessage msg) {
    L3_EXPECTS(inbox_ != nullptr);
    if (buf_.size() >= capacity_) {
      ++stats_.capacity_flushes;
      flush();
    }
    buf_.push_back(std::move(msg));
    ++stats_.messages;
  }

  /// Delivers everything staged to the inbox (no-op when empty). Called at
  /// every conservative window boundary, BEFORE the horizon is published.
  void flush() {
    if (buf_.empty()) return;
    inbox_->deliver(buf_);
    ++stats_.flushes;
  }

  bool empty() const { return buf_.empty(); }
  const MailboxStats& stats() const { return stats_; }

 private:
  MailboxInbox* inbox_ = nullptr;
  std::size_t capacity_ = 1;
  std::vector<ShardMessage> buf_;
  MailboxStats stats_;
};

}  // namespace l3::sim
