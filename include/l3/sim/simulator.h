// Discrete-event simulation core. This substrate replaces the paper's EC2 /
// Kubernetes testbed: every other subsystem (mesh, metrics scraping, the L3
// control loops, workload generators) is driven by events scheduled here.
//
// The simulator is deliberately single-threaded and deterministic: events at
// equal timestamps fire in scheduling order, so a given (topology, scenario,
// seed) triple always reproduces the identical request trace.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

namespace l3::sim {

/// Cancellation handle for a periodic task. Destroying the handle does NOT
/// cancel the task (handles are observers); call `cancel()` explicitly.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// Stops future firings. Safe to call repeatedly or on a default handle.
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }

  bool active() const { return cancelled_ && !*cancelled_; }

 private:
  friend class Simulator;
  explicit PeriodicHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

/// The event loop: a virtual clock plus a time-ordered queue of callbacks.
class Simulator {
 public:
  using EventFn = std::function<void()>;

  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` (>= 0) seconds.
  void schedule_after(SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` every `interval` seconds, first firing at
  /// `now + initial_delay`. Returns a handle to cancel the task.
  PeriodicHandle schedule_every(SimDuration interval, EventFn fn,
                                SimDuration initial_delay = 0.0);

  /// Runs events until the queue is empty or the clock would pass `end`.
  /// The clock is left at `end` (or at the last event if the queue drained).
  /// Returns the number of events processed.
  std::size_t run_until(SimTime end);

  /// Convenience: run_until(now() + duration).
  std::size_t run_for(SimDuration duration) { return run_until(now_ + duration); }

  /// Processes a single event, if any; returns whether one was processed.
  bool step();

  /// Requests the current run_until call to return after the in-flight
  /// event finishes.
  void stop() { stop_requested_ = true; }

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size(); }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO for equal timestamps
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void schedule_periodic(SimDuration interval, EventFn fn,
                         std::shared_ptr<bool> cancelled, SimTime first);

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stop_requested_ = false;
};

}  // namespace l3::sim
