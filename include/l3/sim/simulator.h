// Discrete-event simulation core. This substrate replaces the paper's EC2 /
// Kubernetes testbed: every other subsystem (mesh, metrics scraping, the L3
// control loops, workload generators) is driven by events scheduled here.
//
// The simulator is deliberately single-threaded and deterministic: events at
// equal timestamps fire in scheduling order, so a given (topology, scenario,
// seed) triple always reproduces the identical request trace (pinned by
// tests/sim_determinism_test.cpp).
//
// Hot-path design (see include/l3/sim/event.h): events are EventFns with
// inline storage for small captures, queued in an explicit 4-ary min-heap.
// Periodic tasks keep their callback in a single heap-allocated control
// block for their whole lifetime and reschedule in place — the nth firing
// lands at exactly `first + n * interval`, so co-periodic tasks (5 s control
// ticks vs 5 s scrape ticks) never drift apart over long runs.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/logging.h"
#include "l3/common/time.h"
#include "l3/sim/event.h"

#include <cstdint>
#include <memory>

namespace l3::sim {

namespace detail {
/// Control block of one periodic task. Allocated once per schedule_every()
/// and shared by the in-flight event and any PeriodicHandles; the callback
/// is never re-wrapped between firings.
struct PeriodicTask {
  EventFn fn;
  SimDuration interval = 0.0;
  SimTime first = 0.0;     ///< time of firing 0
  std::uint64_t fired = 0; ///< completed firings
  bool cancelled = false;
};
}  // namespace detail

/// Cancellation handle for a periodic task. Destroying the handle does NOT
/// cancel the task (handles are observers); call `cancel()` explicitly.
class PeriodicHandle {
 public:
  PeriodicHandle() = default;

  /// Stops future firings. Safe to call repeatedly or on a default handle.
  void cancel() {
    if (task_) task_->cancelled = true;
  }

  bool active() const { return task_ && !task_->cancelled; }

 private:
  friend class Simulator;
  explicit PeriodicHandle(std::shared_ptr<detail::PeriodicTask> task)
      : task_(std::move(task)) {}
  std::shared_ptr<detail::PeriodicTask> task_;
};

/// The event loop: a virtual clock plus a time-ordered queue of callbacks.
class Simulator {
 public:
  using EventFn = sim::EventFn;

  /// Construction binds this simulator's LogContext to the current thread
  /// (restored on destruction), and wires the sim clock in as its time
  /// provider. A Simulator must be constructed, run and destroyed on the
  /// same thread; concurrent Simulators on different threads are fully
  /// isolated — no shared mutable state, including logging.
  Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// This simulation's logging configuration (level, sink, time stamps).
  LogContext& log() { return log_context_; }

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// Schedules `fn` at absolute time `t` (>= now).
  void schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` after `delay` (>= 0) seconds.
  void schedule_after(SimDuration delay, EventFn fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules a cross-shard delivery at absolute time `t` (>= now) under a
  /// shard-count-invariant sequence key instead of this simulator's local
  /// counter: the event's queue seq encodes (origin cluster, origin
  /// sequence), both assigned on the ORIGIN shard, so the pop order among
  /// deliveries — and between deliveries and local events — is identical no
  /// matter how clusters are grouped onto shards or when the mailbox commit
  /// happened to run. Delivered seqs sit above every local seq
  /// (kDeliveredSeqBase), so at equal timestamps local events fire first;
  /// that too is partition-invariant. Requires `origin_cluster` < 2^8 and
  /// `origin_seq` < 2^31.
  void schedule_delivered(SimTime t, std::uint32_t origin_cluster,
                          std::uint32_t origin_seq, EventFn fn);

  /// Local seqs live strictly below this; delivered seqs at/above it.
  static constexpr std::uint64_t kDeliveredSeqBase = 1ull << 39;
  static constexpr unsigned kDeliveredClusterBits = 8;
  static constexpr unsigned kDeliveredSeqBits = 31;

  /// Schedules `fn` every `interval` seconds, first firing at
  /// `now + initial_delay`. Returns a handle to cancel the task.
  PeriodicHandle schedule_every(SimDuration interval, EventFn fn,
                                SimDuration initial_delay = 0.0);

  /// Runs events until the queue is empty or the clock would pass `end`.
  /// The clock is left at `end` (or at the last event if the queue drained).
  /// Returns the number of events processed.
  ///
  /// Events are drained in dispatch batches of up to dispatch_batch()
  /// events (EventQueue::dispatch_batch): identical event order, one
  /// outer-loop iteration and one instrumentation record per batch.
  std::size_t run_until(SimTime end);

  /// Convenience: run_until(now() + duration).
  std::size_t run_for(SimDuration duration) { return run_until(now_ + duration); }

  /// Processes a single event, if any; returns whether one was processed.
  bool step();

  /// Requests the current run_until call to return after the in-flight
  /// event finishes.
  void stop() { stop_requested_ = true; }

  /// Default dispatch-batch size: deep enough to amortize the outer loop,
  /// far shallower than any point where latency-to-stop() could matter
  /// (stop() still takes effect after the in-flight event).
  static constexpr std::size_t kDefaultDispatchBatch = 64;

  /// Sets the max events drained per dispatch batch (clamped to >= 1).
  /// Batching never reorders events; 1 restores the strictly per-event
  /// loop (the --no-batch A/B baseline).
  void set_dispatch_batch(std::size_t n) {
    dispatch_batch_ = n < 1 ? 1 : n;
  }
  std::size_t dispatch_batch() const { return dispatch_batch_; }

  /// Number of events currently pending.
  std::size_t pending() const { return queue_.size(); }

  /// Total number of events executed since construction.
  std::uint64_t executed() const { return executed_; }

 private:
  void fire_periodic(const std::shared_ptr<detail::PeriodicTask>& task);
  void schedule_periodic_firing(std::shared_ptr<detail::PeriodicTask> task,
                                SimTime at);

  LogContext log_context_;
  ScopedLogBind log_bind_;
  EventQueue queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::size_t dispatch_batch_ = kDefaultDispatchBatch;
  bool stop_requested_ = false;
};

}  // namespace l3::sim
