// Building blocks of the allocation-free event core: `EventFn`, a move-only
// callable with small-buffer optimization sized for the closures the mesh
// hot path actually schedules (proxy hops, WAN transits, client arrivals),
// and `EventQueue`, a tiered pending-event queue whose front is an
// explicit 4-ary min-heap ordered by (time, seq).
//
// Why not std::function + std::priority_queue:
//   * std::function heap-allocates for captures beyond ~2 pointers; every
//     simulated request crosses the queue 5+ times, so those allocations
//     dominated schedule_at() profiles. EventFn stores captures up to
//     kInlineCapacity bytes in place and only falls back to the heap for
//     oversized callables.
//   * priority_queue::top() returns a const reference, forcing a const_cast
//     to move the callable out before pop(). EventQueue::pop_min() moves the
//     root out safely. And a monolithic heap pays a full-depth, random-
//     access sift-down per pop once the pending set outgrows the cache;
//     the tiered queue keeps its heap small and does the rest of its
//     bookkeeping as sequential sorts and merges.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/function.h"
#include "l3/common/time.h"

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

namespace l3::sim {

/// Move-only `void()` callable with inline storage for small captures.
/// Capacity is sized for the common event shapes — `this` + a pool handle +
/// a few scalars — and, deliberately, one byte-budget step above the mesh
/// callback types (l3/mesh/types.h) so a completion callback plus a scalar
/// still schedules inline.
using EventFn = common::SmallFn<void(), 48>;

/// One queued event. `seq` breaks timestamp ties FIFO, which is what makes
/// equal-time events fire in scheduling order (the determinism contract).
struct Event {
  SimTime time = 0.0;
  std::uint64_t seq = 0;
  EventFn fn;

  /// Strict weak ordering: earlier time first, then lower seq.
  friend bool earlier(const Event& a, const Event& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

/// Tiered pending-event queue: a small 4-ary min-heap front backed by a
/// sorted run and an unsorted staging buffer (a lazy queue in the spirit of
/// Ronngren & Ayani).
///
/// The heap holds exactly the events ordered before the horizon key, so it
/// stays a few thousand entries deep and its sifts run in L1/L2 regardless
/// of how many events are pending overall. Far-future pushes append to `staging_`
/// (O(1), sequential); when the heap drains, the next batch is bulk-loaded
/// from the sorted `run_` (an ascending append is already a valid heap, so
/// the load is sift-free) and `staging_` is partitioned against the new
/// horizon. Staging is sorted and merged into the run only when it grows
/// large, so every entry is sorted once and copied O(1) times amortized —
/// sequential work instead of the full-depth random-access sift-down a
/// monolithic heap pays per pop once the pending set outgrows the cache.
///
/// Heap entries are 16 bytes — the timestamp plus the sequence number and
/// slot index packed into one u64 — so the four children of a node share a
/// single cache line. The EventFns sit in a chunked slot pool on the side,
/// their indices recycled through a free list; callables never move between
/// tiers, and are moved exactly once in their queue lifetime (in at push —
/// dispatch_min() invokes them in place; only pop_min() moves them out).
/// Steady state runs allocation-free: pool and buffers high-watermark at
/// the maximum number of concurrently pending events.
///
/// Determinism: the pop order is exactly ascending (time, seq). Within the
/// heap that is the sift order; across tiers it follows from the invariant
/// that the heap holds exactly the pending entries ordered strictly before
/// the (horizon_, horizon_seq_slot_) key and everything outside orders at
/// or after it — the run is sorted and staging is sorted on every flush.
/// The horizon is a full (time, seq) key rather than a bare timestamp so
/// the ordering holds for ARBITRARY interleavings of sequence numbers, not
/// just monotonically increasing ones: cross-shard mailbox commits push
/// "delivered" events whose seq encodes a shard-count-invariant
/// (origin cluster, origin sequence) key and therefore arrive out of seq
/// order at equal timestamps (see Simulator::schedule_delivered).
class EventQueue {
 public:
  bool empty() const noexcept { return size() == 0; }
  std::size_t size() const noexcept {
    return entries_.size() + (run_.size() - run_head_) + staging_.size();
  }

  /// Timestamp of the earliest event; undefined when empty. May promote a
  /// batch of events into the heap front, hence non-const.
  SimTime min_time() {
    L3_EXPECTS(!empty());
    if (entries_.empty()) refill();
    return entries_.front().time;
  }

  void push(SimTime time, std::uint64_t seq, EventFn fn) {
    L3_EXPECTS(seq <= kMaxSeq);
    std::uint32_t slot;
    if (free_slots_.empty()) {
      slot = slot_count_;
      L3_EXPECTS(slot <= kSlotMask);
      if ((slot_count_ >> kChunkShift) == chunks_.size()) {
        chunks_.emplace_back(new EventFn[kChunkSize]);
      }
      ++slot_count_;
    } else {
      slot = free_slots_.back();
      free_slots_.pop_back();
    }
    slot_ref(slot) = std::move(fn);
    const Entry entry{time, (seq << kSlotBits) | slot};
    if (before_horizon(entry)) {
      entries_.push_back(entry);
      sift_up(entries_.size() - 1);
    } else {
      staging_.push_back(entry);
      staging_min_time_ = std::min(staging_min_time_, time);
    }
  }

  void push(Event ev) { push(ev.time, ev.seq, std::move(ev.fn)); }

  /// Removes and returns the earliest event by move — no const_cast, no
  /// copy of the callable.
  Event pop_min() {
    L3_EXPECTS(!empty());
    if (entries_.empty()) refill();
    const Entry top = entries_.front();
    const std::uint32_t slot =
        static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
#if defined(__GNUC__)
    // The slot pool is randomly accessed; start the load now so it overlaps
    // with the sift below instead of stalling the move-out.
    __builtin_prefetch(&slot_ref(slot));
#endif
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    free_slots_.push_back(slot);
    return Event{top.time, top.seq_slot >> kSlotBits,
                 std::move(slot_ref(slot))};
  }

  /// Pops the earliest event and invokes `sink(time, fn)` with the callable
  /// still in its pool slot — no move-out. The slot is reclaimed only after
  /// the sink returns, and chunked slot storage guarantees the reference
  /// stays valid even when the sink re-enters push() (new pushes may add a
  /// chunk but never relocate existing ones). This is the dispatch loop's
  /// fast path: pop_min() pays a full SmallFn relocation per event, which
  /// for closures holding nested callbacks is an indirect relocate chain.
  template <typename Sink>
  void dispatch_min(Sink&& sink) {
    L3_EXPECTS(!empty());
    if (entries_.empty()) refill();
    const Entry top = entries_.front();
    const std::uint32_t slot =
        static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
    EventFn& fn = slot_ref(slot);
#if defined(__GNUC__)
    __builtin_prefetch(&fn);
#endif
    entries_.front() = entries_.back();
    entries_.pop_back();
    if (!entries_.empty()) sift_down(0);
    sink(top.time, fn);
    fn.reset();
    free_slots_.push_back(slot);
  }

  /// Drains up to `max_n` events with time <= `end`, invoking
  /// `sink(time, fn) -> bool` for each with the callable in place, exactly
  /// as that many dispatch_min() calls would — the pop order (time, seq) is
  /// untouched, re-entrant pushes are observed immediately (an event
  /// scheduling at the current timestamp is popped within the same batch),
  /// and a `false` return from the sink ends the batch after that event.
  /// What batching buys is the per-event caller overhead: one outer-loop
  /// iteration, one empty()/min_time() probe and one instrumentation record
  /// per batch instead of per event. Returns the number dispatched.
  template <typename Sink>
  std::size_t dispatch_batch(SimTime end, std::size_t max_n, Sink&& sink) {
    std::size_t n = 0;
    while (n < max_n) {
      if (entries_.empty()) {
        if (empty()) break;
        refill();
      }
      const Entry top = entries_.front();
      if (top.time > end) break;
      const std::uint32_t slot =
          static_cast<std::uint32_t>(top.seq_slot & kSlotMask);
      EventFn& fn = slot_ref(slot);
#if defined(__GNUC__)
      __builtin_prefetch(&fn);
#endif
      entries_.front() = entries_.back();
      entries_.pop_back();
      if (!entries_.empty()) sift_down(0);
      const bool keep_going = sink(top.time, fn);
      fn.reset();
      free_slots_.push_back(slot);
      ++n;
      if (!keep_going) break;
    }
    return n;
  }

  void clear() noexcept {
    entries_.clear();
    run_.clear();
    run_head_ = 0;
    staging_.clear();
    staging_min_time_ = kEmptyStagingMin;
    chunks_.clear();
    slot_count_ = 0;
    free_slots_.clear();
    horizon_ = kInitialHorizon;
    horizon_seq_slot_ = 0;
  }

 private:
  // Sequence number and slot index packed into one word, seq in the high
  // bits: sequence numbers are unique, so comparing the packed word orders
  // equal-time entries FIFO exactly as comparing seq alone would. The
  // 40/24 split allows ~1.1e12 total events and ~16.7M concurrently
  // pending — both guarded by preconditions in push().
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kMaxSeq = (~0ull) >> kSlotBits;

  /// Events promoted into the heap per refill: deep enough to amortize the
  /// staging scan, shallow enough that the heap (16 KiB of entries) sifts
  /// entirely in L1.
  static constexpr std::size_t kRefillBatch = 1024;
  /// Staging is merged into the run once it could no longer be rescanned
  /// cheaply relative to the run it shadows.
  static constexpr std::size_t kStagingFlushMin = 2 * kRefillBatch;
  /// All initial pushes stage until the first pop establishes a horizon.
  static constexpr SimTime kInitialHorizon =
      -std::numeric_limits<SimTime>::infinity();
  static constexpr SimTime kEmptyStagingMin =
      std::numeric_limits<SimTime>::infinity();

  struct Entry {
    SimTime time;
    std::uint64_t seq_slot;
  };
  static_assert(sizeof(Entry) == 16);

  static bool earlier(const Entry& a, const Entry& b) noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq_slot < b.seq_slot;
  }

  /// Whether `e` orders strictly before the horizon key, i.e. belongs in
  /// the heap. At equal timestamps the seq decides, so a low-seq entry
  /// pushed while its timestamp equals the horizon still overtakes the
  /// staged/run entries it must precede.
  bool before_horizon(const Entry& e) const noexcept {
    if (e.time != horizon_) return e.time < horizon_;
    return e.seq_slot < horizon_seq_slot_;
  }

  std::size_t run_remaining() const noexcept {
    return run_.size() - run_head_;
  }

  /// Sorts staging and merges it into the run (consumed prefix compacted
  /// away first). Every entry is sorted exactly once on its way through.
  void flush_staging() {
    if (staging_.empty()) return;
    run_.erase(run_.begin(),
               run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
    run_head_ = 0;
    std::sort(staging_.begin(), staging_.end(), &EventQueue::earlier);
    const auto mid = run_.size();
    run_.insert(run_.end(), staging_.begin(), staging_.end());
    std::inplace_merge(run_.begin(),
                       run_.begin() + static_cast<std::ptrdiff_t>(mid),
                       run_.end(), &EventQueue::earlier);
    staging_.clear();
    staging_min_time_ = kEmptyStagingMin;
  }

  /// Heap empty but events pending elsewhere: advance the horizon and bulk-
  /// load the next batch from the run, then pull in any staged events the
  /// new horizon now covers.
  void refill() {
    if (run_remaining() <= kRefillBatch ||
        (staging_.size() >= kStagingFlushMin &&
         staging_.size() * 4 >= run_remaining())) {
      flush_staging();
    }
    if (run_head_ >= kRefillBatch * 8 && run_head_ * 2 >= run_.size()) {
      run_.erase(run_.begin(),
                 run_.begin() + static_cast<std::ptrdiff_t>(run_head_));
      run_head_ = 0;
    }
    const std::size_t take_end =
        std::min(run_head_ + kRefillBatch, run_.size());
    L3_ASSERT(take_end > run_head_);
    // Ascending appends already satisfy the heap property — no sifts.
    entries_.assign(run_.begin() + static_cast<std::ptrdiff_t>(run_head_),
                    run_.begin() + static_cast<std::ptrdiff_t>(take_end));
#if defined(__GNUC__)
    // The batch's callables were pushed long ago and their slots have gone
    // cold; touching all of them here lets the misses overlap each other
    // instead of stalling one pop at a time over the coming epoch.
    for (const Entry& e : entries_) {
      __builtin_prefetch(
          &slot_ref(static_cast<std::uint32_t>(e.seq_slot & kSlotMask)), 0, 2);
    }
#endif
    horizon_ = run_[take_end - 1].time;
    horizon_seq_slot_ = run_[take_end - 1].seq_slot;
    run_head_ = take_end;
    if (run_head_ == run_.size()) {
      run_.clear();
      run_head_ = 0;
    }
    // Staged events the horizon has caught up with belong in the heap now.
    // Staged times usually sit well past the horizon (they were too far out
    // for the previous epoch too), so the tracked minimum lets most refills
    // skip the scan outright.
    if (staging_min_time_ <= horizon_) {
      std::size_t kept = 0;
      SimTime new_min = kEmptyStagingMin;
      for (const Entry& e : staging_) {
        if (before_horizon(e)) {
          entries_.push_back(e);
          sift_up(entries_.size() - 1);
        } else {
          staging_[kept++] = e;
          new_min = std::min(new_min, e.time);
        }
      }
      staging_.resize(kept);
      staging_min_time_ = new_min;
    }
  }

  static constexpr std::size_t kArity = 4;

  void sift_up(std::size_t i) {
    const Entry moving = entries_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / kArity;
      if (!earlier(moving, entries_[parent])) break;
      entries_[i] = entries_[parent];
      i = parent;
    }
    entries_[i] = moving;
  }

  void sift_down(std::size_t i) {
    const std::size_t n = entries_.size();
    const Entry moving = entries_[i];
    for (;;) {
      const std::size_t first_child = i * kArity + 1;
      if (first_child >= n) break;
      std::size_t best = first_child;
      const std::size_t last_child = std::min(first_child + kArity, n);
      for (std::size_t c = first_child + 1; c < last_child; ++c) {
        if (earlier(entries_[c], entries_[best])) best = c;
      }
      if (!earlier(entries_[best], moving)) break;
      entries_[i] = entries_[best];
      i = best;
    }
    entries_[i] = moving;
  }

  std::vector<Entry> entries_;        // the 4-ary heap front (before horizon key)
  std::vector<Entry> run_;            // sorted ascending; consumed from run_head_
  std::size_t run_head_ = 0;
  // Slot pool for the EventFns, stored in fixed-size chunks so a slot's
  // address never changes once allocated. That stability is what lets
  // dispatch_min() hand out a reference into the pool while the callable
  // runs: re-entrant pushes can grow the pool by appending a chunk, but
  // never relocate live slots the way a flat vector's reallocation would.
  static constexpr std::size_t kChunkShift = 8;
  static constexpr std::size_t kChunkSize = 1u << kChunkShift;

  EventFn& slot_ref(std::uint32_t slot) noexcept {
    return chunks_[slot >> kChunkShift][slot & (kChunkSize - 1)];
  }

  std::vector<Entry> staging_;        // unsorted pushes at/after the horizon key
  SimTime staging_min_time_ = kEmptyStagingMin;
  std::vector<std::unique_ptr<EventFn[]>> chunks_;
  std::uint32_t slot_count_ = 0;
  std::vector<std::uint32_t> free_slots_;
  SimTime horizon_ = kInitialHorizon;
  /// seq_slot of the last entry loaded into the heap: together with
  /// horizon_ it forms the full (time, seq) key that before_horizon()
  /// compares against, so equal-time pushes land on the correct side.
  std::uint64_t horizon_seq_slot_ = 0;
};

}  // namespace l3::sim
