// Conservative-lookahead parallel DES harness: N shards, each running its
// own single-threaded Simulator over a group of clusters, synchronized by a
// Chandy-Misra-Bryant-style barrier. Shard i may safely execute every event
// strictly before
//
//   safe_i = min over coupled shards j of (horizon_j + lookahead(j -> i))
//
// where lookahead(j -> i) is the minimum registered WAN delay floor over
// cluster pairs (a in j, b in i) — any message j can still emit arrives no
// earlier than its current horizon plus that floor. Cross-shard traffic
// travels through bounded per-pair mailboxes (l3/sim/mailbox.h) carrying a
// shard-count-invariant (origin cluster, origin sequence) key, committed
// into the target Simulator via schedule_delivered(), so the executed event
// order — and therefore every simulation result — is byte-identical for any
// shard count, including 1.
//
// Protocol invariants (the determinism/safety argument, also DESIGN.md §14):
//   * flush-before-publish: a shard delivers all staged messages to target
//     inboxes before publishing a new horizon;
//   * acquire-then-drain: a shard drains its inbox only after acquire()
//     returns, whose mutex hand-off makes all those flushes visible;
//   * a shard that acquires safe > end owes nothing more to anyone: every
//     message still in flight toward it arrives strictly after `end`.
// Shards with no coupled peers see safe = +inf and run the whole horizon in
// one window — the --shards=1 path executes exactly the legacy loop.
#pragma once

#include "l3/common/assert.h"
#include "l3/common/time.h"
#include "l3/sim/mailbox.h"
#include "l3/sim/simulator.h"

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace l3::sim {

class ShardEngine;

/// Per-shard façade over the engine: posting keyed cross-cluster events and
/// driving the conservative window loop. All methods are called exclusively
/// from the owning shard's thread.
class ShardRouter {
 public:
  /// Binds the shard's Simulator (constructed on the shard's own thread —
  /// the Simulator thread-affinity contract carries over).
  void attach(Simulator& sim) { sim_ = &sim; }

  Simulator& sim() const {
    L3_EXPECTS(sim_ != nullptr);
    return *sim_;
  }

  /// Posts a keyed event from `origin` cluster (owned by this shard) to
  /// `target` cluster's owning shard at absolute time `time`. Same-shard
  /// targets schedule immediately; cross-shard targets stage into the
  /// pair's mailbox. In both cases the event carries the same
  /// (origin cluster, origin seq) key, so results cannot depend on which
  /// side of a shard boundary the target happens to live.
  ///
  /// Preconditions: `time >= now + lookahead(origin, target)` when a finite
  /// lookahead is registered for the pair (always required cross-shard —
  /// this is the conservative bound the barrier leans on), else
  /// `time >= now`.
  void post(std::uint32_t origin, std::uint32_t target, SimTime time,
            EventFn fn);

  /// Runs this shard's simulator to `end` under the conservative barrier:
  /// repeatedly acquires a safe horizon, drains + commits inbox messages,
  /// executes strictly below the horizon, flushes staging, publishes. The
  /// final window (safe > end) runs inclusively to `end`, exactly like the
  /// legacy Simulator::run_until, then publishes +inf.
  void run_until(SimTime end);

  ShardEngine& engine() const { return *engine_; }
  std::size_t shard() const { return shard_; }

  /// Sum of this shard's outgoing staging counters.
  MailboxStats mailbox_stats() const;

 private:
  friend class ShardEngine;

  /// Drains the inbox and commits every message into the simulator under
  /// its origin key. Commit order is irrelevant — the EventQueue orders by
  /// the encoded (time, seq) key.
  void drain_commit();
  void flush_all();

  ShardEngine* engine_ = nullptr;
  std::size_t shard_ = 0;
  Simulator* sim_ = nullptr;
  std::vector<MailboxStaging> staging_;   // per target shard; self unused
  std::vector<std::uint32_t> next_seq_;   // per origin cluster
  std::vector<ShardMessage> drain_buf_;
  SimTime committed_ = 0.0;
};

/// Owns the shards' shared state: cluster->shard ownership, the cluster-pair
/// lookahead table, per-shard inboxes/routers, the horizon barrier and the
/// worker threads.
class ShardEngine {
 public:
  struct Config {
    std::size_t shards = 1;
    /// Pin each shard to a CPU and run ALL shards on spawned threads (bench
    /// mode). Default off: shard 0 runs on the calling thread, preserving
    /// any thread-local bindings (obs recorder, log context) the caller set
    /// up around a pre-constructed Simulator.
    bool pin_threads = false;
    /// Staged messages per shard pair before an early flush.
    std::size_t mailbox_capacity = 256;
  };

  explicit ShardEngine(Config config);
  explicit ShardEngine(std::size_t shards) : ShardEngine(Config{shards}) {}
  ShardEngine(const ShardEngine&) = delete;
  ShardEngine& operator=(const ShardEngine&) = delete;

  /// Assigns every cluster id to an owning shard (index = cluster id).
  void set_cluster_owners(std::vector<std::size_t> owners);

  /// Registers the delay floor for origin->target cluster traffic (from
  /// WanModel::min_base). Unregistered pairs default to +inf (uncoupled).
  void set_cluster_lookahead(std::uint32_t from, std::uint32_t to,
                             SimDuration lookahead);

  std::size_t shards() const { return shard_count_; }
  std::size_t cluster_count() const { return owners_.size(); }
  std::size_t owner(std::uint32_t cluster) const {
    L3_EXPECTS(cluster < owners_.size());
    return owners_[cluster];
  }
  SimDuration cluster_lookahead(std::uint32_t from, std::uint32_t to) const;
  /// min over (a owned by from, b owned by to) of cluster_lookahead(a, b).
  SimDuration shard_lookahead(std::size_t from, std::size_t to) const;

  ShardRouter& router(std::size_t shard) {
    L3_EXPECTS(shard < shard_count_);
    return *routers_[shard];
  }
  ShardRouter& router_for_cluster(std::uint32_t cluster) {
    return router(owner(cluster));
  }

  /// Runs `body(shard)` once per shard, in parallel. Every shard publishes
  /// a +inf horizon when its body returns (or throws), so peers never block
  /// on an idle or finished shard. The first exception thrown by any body
  /// is rethrown here after all threads join.
  void run(const std::function<void(std::size_t)>& body);

  /// Full barrier across all shard bodies (multi-phase setup). Either every
  /// body calls sync() the same number of times, or none do. Throws if
  /// another shard's body failed, instead of deadlocking.
  void sync();

  /// Summed mailbox counters across all routers (call after run()).
  MailboxStats mailbox_stats() const;

  // --- barrier internals, called by ShardRouter on shard threads ---

  /// Blocks until min over coupled peers of (horizon + lookahead) exceeds
  /// `committed`; returns that bound (+inf when uncoupled).
  SimTime acquire(std::size_t shard, SimTime committed);
  /// Publishes `horizon` for `shard`: every event this shard will still
  /// execute is at or after it. Monotonic.
  void publish(std::size_t shard, SimTime horizon);

  MailboxInbox& inbox(std::size_t shard) {
    L3_EXPECTS(shard < shard_count_);
    return *inboxes_[shard];
  }

 private:
  void run_shard(std::size_t shard,
                 const std::function<void(std::size_t)>& body);
  /// Builds shard_la_ from owners + cluster lookaheads; validates that
  /// coupled distinct shards have strictly positive lookahead (zero would
  /// deadlock the barrier).
  void prepare();

  Config config_;
  std::size_t shard_count_;
  std::vector<std::size_t> owners_;            // cluster -> shard
  std::vector<SimDuration> cluster_la_;        // row-major clusters x clusters
  std::vector<SimDuration> shard_la_;          // row-major shards x shards
  std::vector<std::unique_ptr<MailboxInbox>> inboxes_;
  std::vector<std::unique_ptr<ShardRouter>> routers_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<SimTime> horizons_;
  std::size_t sync_waiting_ = 0;
  std::uint64_t sync_generation_ = 0;
  bool aborted_ = false;
  std::exception_ptr first_error_;
};

}  // namespace l3::sim
