// l3::obs — the system watching itself. Two tiers, following the RT-vs-audit
// metrics discipline (SNIPPETS.md, Continuity catalog):
//
//   * RT flight recorder — bounded per-domain ring buffers of structured
//     events (`rt.event.*`) plus counters (`rt.counter.*`) and gauges
//     (`rt.gauge.*`) held in cache-line-padded thread-local shards. RT
//     signals are allowed detail but must stay bounded: fixed ring capacity,
//     fixed id spaces (enums, never strings), no per-request series.
//   * Self-profiler — scoped wall-clock timers over the simulator's own hot
//     paths (event dispatch, picker rebuilds, picks, TSDB writes/compacts,
//     scraper snapshots, controller manage, chaos transitions, timeout-ring
//     sweeps) aggregating into per-subsystem summaries via the radix-sort
//     percentile machinery (common/stats.h).
//
// Threading/determinism contract: a Recorder is written through thread-local
// shards (one per ScopedRecorderBind), so recording is lock- and atomic-free
// on the hot path (gauge sets take one relaxed fetch_add for the merge
// order). Counter totals are sums of per-shard values — identical for every
// thread interleaving. snapshot()/profile() require the writers to be
// quiescent (after the simulation barrier), like the experiment runner's
// result collection. Everything exported into the deterministic bench
// surfaces (the Report JSON `profile` block) is a pure function of the
// simulation: counts, ring totals, sim-time-stamped events — never wall
// time. Wall-clock timings are audit-only (stderr tables, Prometheus audit
// families, Chrome counter tracks live in sim time).
//
// Compile-time gate: configuring with -DL3_OBS=OFF defines L3_OBS_ENABLED=0
// and every L3_OBS_* macro below expands to nothing — the instrumented
// binaries are behaviourally byte-identical (enforced by scripts/check.sh
// against the fig golden outputs). The Recorder class itself stays compiled
// so tests and tools work in both configurations.
#pragma once

#include "l3/common/stats.h"
#include "l3/common/time.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <vector>

#ifndef L3_OBS_ENABLED
#define L3_OBS_ENABLED 1
#endif

namespace l3::obs {

// ---------------------------------------------------------------------------
// Fixed id spaces. RT signals are enums, never strings: the cardinality is
// bounded at compile time and a hot-path record is an array index.

/// Profiled subsystems (one scoped timer each). Order is the export order.
enum class ScopeId : std::uint8_t {
  kSimDispatch = 0,   ///< EventQueue::dispatch_min via Simulator run loop
  kPickerRebuild,     ///< Proxy cumulative-weight table rebuild
  kWeightedPick,      ///< Proxy::pick_weighted
  kP2cPick,           ///< Proxy::pick_p2c
  kTimeoutSweep,      ///< Proxy timeout-ring timer sweep
  kProxyCost,         ///< Proxy cost-model admission (pool + CPU stage)
  kTsdbAppend,        ///< TimeSeriesDb::append / append_histogram
  kTsdbCompact,       ///< TimeSeriesDb::compact (slow path only)
  kScraperScrape,     ///< Scraper::scrape_once
  kScraperPlan,       ///< Scraper::build_plan (registry-version rebuilds)
  kControllerManage,  ///< L3Controller per-split control tick
  kControllerGather,  ///< fused per-split TSDB signal gather
  kChaosTransition,   ///< FaultInjector begin/end_fault
  kCount
};
inline constexpr std::size_t kScopeCount =
    static_cast<std::size_t>(ScopeId::kCount);
std::string_view scope_name(ScopeId id);  ///< e.g. "sim.dispatch"

/// RT counters (`rt.counter.*`), monotone within a run.
enum class CounterId : std::uint8_t {
  kSimEvents = 0,      ///< events dispatched
  kSimBatches,         ///< dispatch batches drained (>=1 event each)
  kMeshRequests,       ///< proxy sends
  kMeshTimeouts,       ///< requests answered by the timeout path
  kMeshHandshakes,     ///< connections opened (mTLS handshake paid)
  kMeshPoolHits,       ///< checkouts served by a warm pooled connection
  kMeshConnExpired,    ///< idle connections pruned by idle_timeout
  kPickKernelLinear,   ///< weighted picks served by the linear-scan kernel
  kPickKernelMultiLane,///< weighted picks served by the multi-lane kernel
  kPickKernelBinary,   ///< weighted picks served by the binary-search kernel
  kPickKernelP2c,      ///< P2C picks (cached-candidate kernel)
  kTsdbSamples,        ///< scalar + histogram samples appended
  kScraperSeries,      ///< series copied registry -> TSDB
  kControllerTicks,    ///< control-loop ticks
  kWeightUpdates,      ///< split weight vectors actually applied
  kChaosTransitions,   ///< fault begin/end transitions fired
  kCount
};
inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(CounterId::kCount);
std::string_view counter_name(CounterId id);  ///< e.g. "rt.counter.sim.events"

/// RT gauges (`rt.gauge.*`), last-write-wins.
enum class GaugeId : std::uint8_t {
  kSimPendingEvents = 0,  ///< event-queue depth (sampled)
  kMeshInflight,          ///< proxy in-flight calls (refresh-path sampled)
  kMeshProxyQueueDelay,   ///< last cost-stage admission wait (saturation)
  kTsdbSeries,            ///< non-empty TSDB series
  kCount
};
inline constexpr std::size_t kGaugeCount =
    static_cast<std::size_t>(GaugeId::kCount);
std::string_view gauge_name(GaugeId id);  ///< e.g. "rt.gauge.sim.pending_events"

/// Flight-recorder domains — one bounded event ring each.
enum class Domain : std::uint8_t {
  kSim = 0,
  kMesh,
  kMetrics,
  kController,
  kChaos,
  kCount
};
inline constexpr std::size_t kDomainCount =
    static_cast<std::size_t>(Domain::kCount);
std::string_view domain_name(Domain d);  ///< e.g. "sim"

/// Structured-event codes (`rt.event.*`).
enum class EventCode : std::uint16_t {
  kPickerRebuild = 0,    ///< arg = availability mask, value = table size
  kAvailabilityRefresh,  ///< arg = availability mask, value = popcount
  kTimeoutFired,         ///< arg = backend index, value = timeout seconds
  kHandshake,            ///< arg = backend index, value = handshake cost (s)
  kScrape,               ///< arg = targets scraped, value = series copied
  kCompact,              ///< arg = 0, value = live series after compaction
  kControllerTick,       ///< arg = managed splits, value = total RPS sample
  kFaultBegin,           ///< arg = FaultKind, value = fault start (sim s)
  kFaultEnd,             ///< arg = FaultKind, value = fault end (sim s)
};
std::string_view event_code_name(EventCode code);  ///< e.g. "rt.event.mesh.picker_rebuild"

/// One flight-recorder entry: sim-time-stamped, fixed-size, POD.
struct RtEvent {
  SimTime time = 0.0;
  EventCode code = EventCode::kPickerRebuild;
  std::uint16_t reserved = 0;
  std::uint32_t arg = 0;
  double value = 0.0;
};
static_assert(sizeof(RtEvent) <= 24, "RtEvent must stay small and POD");

// ---------------------------------------------------------------------------
// Configuration & snapshots.

struct RecorderConfig {
  /// Ring capacity per domain (events kept; older entries overwritten).
  std::size_t ring_capacity = 1024;
  /// Bounded per-scope wall-sample buffer feeding the radix summaries; when
  /// full the buffer decimates (keeps every other sample, doubles the
  /// stride) so memory stays fixed while coverage stays uniform.
  std::size_t max_wall_samples = 2048;
  /// Counter-track buffer bound (samples across all series).
  std::size_t max_track_samples = 65536;
  /// Time every 2^shift-th entry of SAMPLED scopes (counts stay exact).
  unsigned timer_sample_shift = 6;
};

/// One Chrome counter-track sample (recorded by Recorder::sample_tracks).
struct TrackSample {
  SimTime time = 0.0;
  bool is_gauge = false;
  std::uint16_t id = 0;  ///< CounterId or GaugeId
  double value = 0.0;
};

/// Merged, read-only view of a Recorder (writers must be quiescent).
struct Snapshot {
  struct Scope {
    std::string_view name;
    std::uint64_t count = 0;        ///< entries (deterministic)
    std::uint64_t timed = 0;        ///< entries that took a wall timestamp
    double wall_ns_total = 0.0;     ///< audit-only
    double wall_ns_max = 0.0;       ///< audit-only
    LatencySummary wall_ns;         ///< radix-summarized timed samples
  };
  struct Counter {
    std::string_view name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string_view name;
    double value = 0.0;
  };
  struct Ring {
    std::string_view domain;
    std::uint64_t recorded = 0;  ///< total events seen
    std::uint64_t dropped = 0;   ///< overwritten by wraparound
    std::vector<RtEvent> events; ///< oldest-to-newest surviving entries
  };
  std::array<Scope, kScopeCount> scopes{};
  std::array<Counter, kCounterCount> counters{};
  std::array<Gauge, kGaugeCount> gauges{};
  std::array<Ring, kDomainCount> rings{};
  std::vector<TrackSample> tracks;
  std::uint64_t tracks_dropped = 0;
};

/// Dispatch batch sizes are folded into a log2-bucketed histogram: bucket i
/// covers sizes [2^i, 2^(i+1)-1], the last bucket is open-ended. 8 buckets
/// span 1..128+, far beyond any sane dispatch horizon.
inline constexpr std::size_t kBatchBucketCount = 8;
std::string_view batch_bucket_label(std::size_t bucket);  ///< e.g. "4-7"

/// The deterministic per-run digest that rides in workload::RunResult and is
/// merged (in grid order) into the Report JSON `profile` block. Only the
/// count fields are serialized; the wall totals feed audit output (stderr
/// tables) and are never written into jobs-invariance-diffed surfaces.
struct ProfileBlock {
  std::uint64_t cells = 0;  ///< runs merged into this block
  std::array<std::uint64_t, kScopeCount> scope_count{};
  std::array<std::uint64_t, kScopeCount> scope_timed{};
  std::array<double, kScopeCount> scope_wall_ns{};
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<std::uint64_t, kDomainCount> ring_recorded{};
  std::array<std::uint64_t, kDomainCount> ring_dropped{};
  std::array<std::uint64_t, kBatchBucketCount> batch_hist{};

  /// The weighted-pick kernel that actually ran, by pick count: the name of
  /// the dominant kPickKernel* counter, or "none" when no weighted pick
  /// happened. Deterministic (pure function of the counts).
  std::string_view weighted_kernel_name() const;

  bool empty() const { return cells == 0; }
  /// Number of subsystems with at least one recorded entry.
  std::size_t active_subsystems() const;
  /// Element-wise accumulate (callers merge in grid order).
  void merge(const ProfileBlock& other);
};

// ---------------------------------------------------------------------------
// Shard — the thread-local write surface. One per ScopedRecorderBind; padded
// so two binding threads never share a cache line.

class Recorder;

class alignas(64) Shard {
 public:
  void add(CounterId id, std::uint64_t n) {
    counters_[static_cast<std::size_t>(id)] += n;
  }
  void set_gauge(GaugeId id, double value);

  /// Folds one dispatch-batch size into the log2 histogram and bumps the
  /// batch counter (one call per drained batch, not per event).
  void record_batch(std::size_t events) {
    counters_[static_cast<std::size_t>(CounterId::kSimBatches)] += 1;
    std::size_t bucket = 0;
    for (std::size_t v = events >> 1; v != 0 && bucket + 1 < kBatchBucketCount;
         v >>= 1) {
      ++bucket;
    }
    batch_hist_[bucket] += 1;
  }

  void event(Domain domain, SimTime time, EventCode code, std::uint32_t arg,
             double value) {
    EventRing& ring = rings_[static_cast<std::size_t>(domain)];
    if (ring.buf.empty()) return;  // ring_capacity == 0: events disabled
    ring.buf[static_cast<std::size_t>(ring.total % ring.buf.size())] =
        RtEvent{time, code, 0, arg, value};
    ++ring.total;
  }

  // Profiler entry points (used by ScopedTimer).
  struct ScopeStats {
    std::uint64_t count = 0;
    std::uint64_t timed = 0;
    double total_ns = 0.0;
    double max_ns = 0.0;
    std::vector<double> samples;     ///< bounded, stride-decimated
    std::size_t stride = 1;          ///< current decimation stride
    std::size_t stride_phase = 0;    ///< samples seen since last kept
  };
  /// Returns whether this entry should take wall timestamps.
  bool enter_scope(ScopeId id, unsigned sample_shift) {
    ScopeStats& s = scopes_[static_cast<std::size_t>(id)];
    const std::uint64_t n = s.count++;
    return (n & ((1ull << sample_shift) - 1)) == 0;
  }
  void record_scope_ns(ScopeId id, double ns);

 private:
  friend class Recorder;
  explicit Shard(const RecorderConfig& config, Recorder* owner);

  struct EventRing {
    std::vector<RtEvent> buf;
    std::uint64_t total = 0;
  };

  Recorder* owner_;
  std::size_t max_wall_samples_;
  std::array<std::uint64_t, kCounterCount> counters_{};
  struct GaugeCell {
    double value = 0.0;
    std::uint64_t seq = 0;  ///< recorder-wide set order; 0 = never set
  };
  std::array<GaugeCell, kGaugeCount> gauges_{};
  std::array<std::uint64_t, kBatchBucketCount> batch_hist_{};
  std::array<ScopeStats, kScopeCount> scopes_{};
  std::array<EventRing, kDomainCount> rings_{};
};

// ---------------------------------------------------------------------------
// Recorder — owns the shards, merges them, samples counter tracks.

class Recorder {
 public:
  explicit Recorder(RecorderConfig config = {});
  Recorder(const Recorder&) = delete;
  Recorder& operator=(const Recorder&) = delete;

  const RecorderConfig& config() const { return config_; }

  /// Appends one counter-track sample per counter/gauge whose value changed
  /// since the previous call (delta suppression keeps Chrome traces small).
  /// Call from the simulation thread at a fixed sim-time cadence.
  void sample_tracks(SimTime now);

  /// Merged view across shards. Writers must be quiescent.
  Snapshot snapshot() const;

  /// The deterministic digest (counts only; see ProfileBlock).
  ProfileBlock profile() const;

 private:
  friend class ScopedRecorderBind;
  friend class Shard;
  Shard& make_shard();

  RecorderConfig config_;
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::uint64_t> gauge_seq_{0};
  std::vector<TrackSample> tracks_;
  std::uint64_t tracks_dropped_ = 0;
  std::array<double, kCounterCount> last_track_counter_{};
  std::array<double, kGaugeCount> last_track_gauge_{};
  bool tracks_sampled_once_ = false;
};

// ---------------------------------------------------------------------------
// Thread binding (mirrors common/logging.h's ScopedLogBind).

namespace detail {
// Header-inline so local_shard() compiles to a direct TLS load at every
// macro site — the hot path touches this ~10 times per simulated request,
// and the previous out-of-line accessor cost a call each time.
inline thread_local Shard* tl_shard = nullptr;
inline Shard*& tl_shard_slot() noexcept { return tl_shard; }
}  // namespace detail

/// The shard bound to the current thread, or nullptr when no recorder is
/// bound (every L3_OBS_* macro is then a single branch).
inline Shard* local_shard() noexcept { return detail::tl_shard_slot(); }

/// RAII binding of a Recorder to the current thread. Each bind owns a fresh
/// shard (registered with the recorder for its lifetime); bindings nest.
class ScopedRecorderBind {
 public:
  explicit ScopedRecorderBind(Recorder& recorder);
  ~ScopedRecorderBind();
  ScopedRecorderBind(const ScopedRecorderBind&) = delete;
  ScopedRecorderBind& operator=(const ScopedRecorderBind&) = delete;

 private:
  Shard* prev_;
};

/// Scoped wall timer: counts every entry, timestamps every 2^shift-th (the
/// count stays exact and deterministic; the timing cost amortizes away on
/// hot scopes). shift 0 = time every entry (cheap, low-rate scopes).
class ScopedTimer {
 public:
  explicit ScopedTimer(ScopeId id, unsigned sample_shift = 0) : id_(id) {
    shard_ = local_shard();
    if (shard_ == nullptr) return;
    if (shard_->enter_scope(id, sample_shift)) start_ns_ = now_ns();
  }
  ~ScopedTimer() {
    if (shard_ != nullptr && start_ns_ >= 0.0) {
      shard_->record_scope_ns(id_, now_ns() - start_ns_);
    }
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  static double now_ns() noexcept;

  Shard* shard_;
  ScopeId id_;
  double start_ns_ = -1.0;
};

}  // namespace l3::obs

// ---------------------------------------------------------------------------
// Instrumentation macros. With L3_OBS=OFF these expand to nothing: no TLS
// read, no branch, no codegen — the zero-cost contract check.sh verifies.

#if L3_OBS_ENABLED

#define L3_OBS_COUNT(id, n)                                      \
  do {                                                           \
    if (::l3::obs::Shard* l3_obs_shard = ::l3::obs::local_shard()) \
      l3_obs_shard->add(::l3::obs::CounterId::id, (n));          \
  } while (0)

/// As L3_OBS_COUNT but with a runtime ::l3::obs::CounterId value — used
/// where the counter is data-dependent (e.g. which pick kernel ran).
#define L3_OBS_COUNT_DYN(id, n)                                  \
  do {                                                           \
    if (::l3::obs::Shard* l3_obs_shard = ::l3::obs::local_shard()) \
      l3_obs_shard->add((id), (n));                              \
  } while (0)

#define L3_OBS_BATCH(events)                                     \
  do {                                                           \
    if (::l3::obs::Shard* l3_obs_shard = ::l3::obs::local_shard()) \
      l3_obs_shard->record_batch((events));                      \
  } while (0)

#define L3_OBS_GAUGE(id, value)                                  \
  do {                                                           \
    if (::l3::obs::Shard* l3_obs_shard = ::l3::obs::local_shard()) \
      l3_obs_shard->set_gauge(::l3::obs::GaugeId::id, (value));  \
  } while (0)

#define L3_OBS_EVENT(domain, code, time, arg, value)               \
  do {                                                             \
    if (::l3::obs::Shard* l3_obs_shard = ::l3::obs::local_shard()) \
      l3_obs_shard->event(::l3::obs::Domain::domain, (time),       \
                          ::l3::obs::EventCode::code,              \
                          static_cast<std::uint32_t>(arg), (value)); \
  } while (0)

/// Timed scope, every entry timestamped (rare, coarse subsystems).
#define L3_OBS_SCOPE(var, scope) \
  ::l3::obs::ScopedTimer var(::l3::obs::ScopeId::scope)

/// Timed scope, every 64th entry timestamped (hot subsystems).
#define L3_OBS_SCOPE_SAMPLED(var, scope) \
  ::l3::obs::ScopedTimer var(::l3::obs::ScopeId::scope, 6)

#else  // !L3_OBS_ENABLED

#define L3_OBS_COUNT(id, n) ((void)0)
#define L3_OBS_COUNT_DYN(id, n) ((void)0)
#define L3_OBS_BATCH(events) ((void)0)
#define L3_OBS_GAUGE(id, value) ((void)0)
#define L3_OBS_EVENT(domain, code, time, arg, value) ((void)0)
#define L3_OBS_SCOPE(var, scope) ((void)0)
#define L3_OBS_SCOPE_SAMPLED(var, scope) ((void)0)

#endif  // L3_OBS_ENABLED
