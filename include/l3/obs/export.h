// Chrome trace-event rendering for obs snapshots. The fragment writer emits
// counter tracks ("C" phase — Perfetto draws them as stacked area charts)
// for `rt.counter.*` / `rt.gauge.*` samples plus the flight-recorder ring
// events as instants, all inside a dedicated "obs" process. trace/export.cpp
// composes this alongside request spans and fault markers; standalone tools
// can also wrap a fragment into a complete trace document.
#pragma once

#include "l3/obs/recorder.h"

#include <cstddef>
#include <iosfwd>

namespace l3::obs {

/// Appends the snapshot's counter tracks and ring events to an open Chrome
/// `traceEvents` array under process id `pid`. `first` is the caller's
/// comma-separator state (true before the first event in the array).
/// Deterministic given the snapshot: track samples are in sim time, ring
/// events sorted by sim time, and no wall-clock values are rendered.
void write_chrome_fragment(const Snapshot& snapshot, std::size_t pid,
                           bool& first, std::ostream& os);

/// Writes a self-contained Chrome trace-event document holding only the
/// snapshot's obs process (used by the golden counter-track test).
void write_chrome_trace(const Snapshot& snapshot, std::ostream& os);

}  // namespace l3::obs
