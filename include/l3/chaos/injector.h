// The fault injector — the runtime half of l3::chaos. arm() translates a
// FaultPlan into first-class simulator events: crash/restart transitions on
// deployments, scrape-target toggles, controller pause/resume flips. WAN
// partitions and brownouts are installed into the WanModel up front (both
// are time-windowed inside the model itself, and proxies cache availability
// against the partition transition horizon).
//
// Determinism: the injector draws no randomness. Fault times come straight
// from the plan (plus the arm offset), so a fixed (plan, offset, workload
// seed) triple reproduces the identical run — which is what keeps chaos
// sweeps jobs-invariant under exp's work-stealing runner.
#pragma once

#include "l3/chaos/fault_plan.h"
#include "l3/core/controller.h"
#include "l3/mesh/mesh.h"
#include "l3/metrics/scraper.h"
#include "l3/sim/simulator.h"
#include "l3/trace/export.h"

#include <cstdint>
#include <vector>

namespace l3::chaos {

/// Schedules a FaultPlan against a mesh. Must outlive the simulation run
/// (scheduled events reference it).
class FaultInjector {
 public:
  FaultInjector(sim::Simulator& sim, mesh::Mesh& mesh)
      : sim_(sim), mesh_(mesh) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Registers the scraper kScrapeOutage faults act on (optional; outages
  /// are skipped without one).
  void set_scraper(metrics::Scraper* scraper) { scraper_ = scraper; }

  /// Registers a controller kControllerPause faults act on (several
  /// controllers may be registered; all are paused together).
  void add_controller(core::L3Controller* controller);

  /// Schedules every fault in `plan`, shifting all times by `time_offset`
  /// (e.g. the warm-up, so plan times are relative to measurement start).
  /// WAN faults are installed into the WanModel immediately; the rest
  /// become begin/end simulator events. May be called more than once
  /// (plans accumulate).
  void arm(const FaultPlan& plan, SimTime time_offset = 0.0);

  /// Every fault transition of the armed plans, sorted by time (begin and
  /// end of each window) — ready for trace export as instant events.
  const std::vector<trace::FaultMarker>& markers() const { return markers_; }

  /// Fault windows armed so far.
  std::size_t armed() const { return faults_.size(); }

  /// Begin/end transitions actually executed as events so far (WAN faults
  /// are modelled inside the WanModel and do not count).
  std::uint64_t transitions() const { return transitions_; }

 private:
  void begin_fault(const Fault& fault);
  void end_fault(const Fault& fault);
  void set_crashed(const Fault& fault, bool crashed);
  /// "kind:detail" marker name, e.g. "crash:api@cluster-2".
  std::string marker_name(const Fault& fault) const;

  sim::Simulator& sim_;
  mesh::Mesh& mesh_;
  metrics::Scraper* scraper_ = nullptr;
  std::vector<core::L3Controller*> controllers_;
  /// Armed faults with absolute (offset-applied) times; events reference
  /// entries by index, so the vector only ever grows.
  std::vector<Fault> faults_;
  std::vector<trace::FaultMarker> markers_;
  std::uint64_t transitions_ = 0;
};

}  // namespace l3::chaos
