// Deterministic fault plans — the data half of l3::chaos. A FaultPlan is a
// timeline of fault windows (replica crashes, WAN partitions, delay
// brownouts, scraper outages, controller pauses) expressed purely as data:
// no simulator, mesh or RNG references, so a plan is copyable, shareable
// across experiment cells and trivially composable with exp::ExperimentSpec
// grids (the plan rides inside the RunnerConfig each cell copies; the cell
// seed never influences WHEN faults fire, only how the workload reacts).
//
// Times are relative to whatever origin the plan is armed against —
// workload::run_scenario arms plans with the warm-up as offset, so plan
// times are "seconds into the measured window".
#pragma once

#include "l3/common/time.h"
#include "l3/mesh/types.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace l3::chaos {

/// The fault taxonomy (DESIGN.md §11).
enum class FaultKind : std::uint8_t {
  kReplicaCrash,     ///< replica(s) crash; in-flight requests fail
  kWanPartition,     ///< cluster pair unreachable both ways
  kWanBrownout,      ///< extra one-way delay on a cluster pair, both ways
  kScrapeOutage,     ///< scraper target(s) disabled; controller starves
  kControllerPause,  ///< controller stops applying weights (weights freeze)
};

const char* to_string(FaultKind kind);

/// Crash target meaning "every replica of the deployment".
inline constexpr std::size_t kAllReplicas = ~std::size_t{0};

/// One fault window. Which fields matter depends on `kind`; the FaultPlan
/// builder methods fill them consistently.
struct Fault {
  FaultKind kind = FaultKind::kReplicaCrash;
  SimTime start = 0.0;
  /// Window length; 0 = the fault lasts until the end of the run.
  SimDuration duration = 0.0;

  // kReplicaCrash
  std::string service;
  mesh::ClusterId cluster = 0;
  std::size_t replica = kAllReplicas;

  // kWanPartition / kWanBrownout (bidirectional pair a <-> b)
  mesh::ClusterId a = 0;
  mesh::ClusterId b = 0;
  SimDuration extra_delay = 0.0;  ///< kWanBrownout only

  // kScrapeOutage; empty = every registered target
  std::string scrape_target;
};

/// An ordered collection of fault windows. Builder methods return *this for
/// chaining; windows may overlap (overlapping crash windows on the same
/// replica coalesce — crash/restart are idempotent).
class FaultPlan {
 public:
  FaultPlan() = default;

  /// Crashes replica `replica` (default: all replicas) of `service` in
  /// `cluster` at `start` for `duration` seconds (0 = rest of run).
  FaultPlan& crash(std::string service, mesh::ClusterId cluster,
                   SimTime start, SimDuration duration,
                   std::size_t replica = kAllReplicas);

  /// Severs connectivity between clusters `a` and `b` (both directions).
  FaultPlan& partition(mesh::ClusterId a, mesh::ClusterId b, SimTime start,
                       SimDuration duration);

  /// Adds `extra_delay` seconds one-way delay between `a` and `b` (both
  /// directions) — a brownout, not an outage.
  FaultPlan& brownout(mesh::ClusterId a, mesh::ClusterId b, SimTime start,
                      SimDuration duration, SimDuration extra_delay);

  /// Disables scraping of `target` ("" = all targets) for the window —
  /// starves the controller of metrics, driving its staleness/converge
  /// path.
  FaultPlan& scrape_outage(SimTime start, SimDuration duration,
                           std::string target = "");

  /// Pauses weight application on every registered controller for the
  /// window (a leader-failover gap: filtering continues, weights freeze).
  FaultPlan& controller_pause(SimTime start, SimDuration duration);

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }

 private:
  std::vector<Fault> faults_;
};

/// Parameters of the seed-driven plan generator (ablation_chaos sweeps
/// `intensity` across policies).
struct RandomPlanConfig {
  /// Plan horizon: every fault window starts inside [0, horizon).
  SimDuration horizon = 600.0;
  /// Scales the expected number of fault windows of every kind; 0 yields
  /// an empty plan.
  double intensity = 1.0;
  std::string service = "api";
  std::size_t clusters = 3;
  /// The cluster hosting the client/controller side: partitions and
  /// brownouts always involve this cluster (links nobody routes over would
  /// be invisible faults).
  mesh::ClusterId source = 0;
};

/// Generates a plan deterministically from (config, seed): same inputs,
/// same plan, independent of where or how often it is called.
FaultPlan make_random_plan(const RandomPlanConfig& config,
                           std::uint64_t seed);

}  // namespace l3::chaos
